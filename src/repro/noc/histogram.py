"""Bounded streaming histogram for latency distributions.

Latency tails matter (p95/p99 distinguish a congested network from a merely
busy one) but storing every sample is out of the question for
production-scale runs.  :class:`StreamingHistogram` keeps exact counts for
small values — one bucket per cycle up to ``linear_limit`` — and one
power-of-two bucket per octave beyond it, so memory is bounded by
``linear_limit + log2(max_value)`` buckets regardless of sample count.
Percentiles are exact below ``linear_limit`` (which covers every sane
latency) and bucket-resolution above it (which only matters once the
network has already saturated).

The counts live in a sparse dict, so an idle class costs nothing, and the
whole structure supports ``merge`` (sliced double networks) and ``delta``
(measurement-window percentiles from before/after snapshots).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Default boundary between exact 1-cycle buckets and power-of-two buckets.
DEFAULT_LINEAR_LIMIT = 4096


class StreamingHistogram:
    """Histogram over non-negative integer samples with bounded memory."""

    __slots__ = ("linear_limit", "counts", "total", "_min", "_max")

    def __init__(self, linear_limit: int = DEFAULT_LINEAR_LIMIT) -> None:
        if linear_limit < 1:
            raise ValueError("linear_limit must be >= 1")
        self.linear_limit = linear_limit
        #: bucket id -> count.  Ids >= 0 are exact values below
        #: ``linear_limit``; id ``-n`` is the power-of-two bucket holding
        #: values with bit length ``n`` (i.e. ``[2**(n-1), 2**n)``).
        self.counts: Dict[int, int] = {}
        self.total = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    # -- recording -----------------------------------------------------------

    def add(self, value: int, count: int = 1) -> None:
        if value < 0:
            raise ValueError(f"histogram samples must be >= 0, got {value}")
        bucket = value if value < self.linear_limit else -value.bit_length()
        self.counts[bucket] = self.counts.get(bucket, 0) + count
        self.total += count
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold ``other``'s samples into this histogram (exact)."""
        if other.linear_limit != self.linear_limit:
            raise ValueError("cannot merge histograms with different "
                             "linear limits")
        for bucket, count in other.counts.items():
            self.counts[bucket] = self.counts.get(bucket, 0) + count
        self.total += other.total
        if other._min is not None and (self._min is None
                                       or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None
                                       or other._max > self._max):
            self._max = other._max

    def copy(self) -> "StreamingHistogram":
        dup = StreamingHistogram(self.linear_limit)
        dup.counts = dict(self.counts)
        dup.total = self.total
        dup._min = self._min
        dup._max = self._max
        return dup

    def delta(self, before: "StreamingHistogram") -> "StreamingHistogram":
        """Samples added since ``before`` (a prior snapshot of this
        histogram).  Min/max of the delta are bucket-resolution: exact below
        ``linear_limit``, bucket lower bounds beyond it."""
        if before.linear_limit != self.linear_limit:
            raise ValueError("snapshot has a different linear limit")
        diff = StreamingHistogram(self.linear_limit)
        for bucket, count in self.counts.items():
            remaining = count - before.counts.get(bucket, 0)
            if remaining < 0:
                raise ValueError("delta against a later snapshot")
            if remaining:
                diff.counts[bucket] = remaining
        diff.total = self.total - before.total
        if diff.total < 0:
            raise ValueError("delta against a later snapshot")
        values = [self._bucket_value(b) for b in diff.counts]
        diff._min = min(values) if values else None
        diff._max = max(values) if values else None
        return diff

    # -- queries -------------------------------------------------------------

    def _bucket_value(self, bucket: int) -> int:
        """Representative (lower-bound) value of a bucket."""
        return bucket if bucket >= 0 else 1 << (-bucket - 1)

    def _sorted_buckets(self) -> List[Tuple[int, int]]:
        """(representative value, count) in ascending value order."""
        return sorted(((self._bucket_value(b), c)
                       for b, c in self.counts.items()))

    @property
    def min(self) -> int:
        return self._min if self._min is not None else 0

    @property
    def max(self) -> int:
        return self._max if self._max is not None else 0

    def percentile(self, p: float) -> int:
        """Smallest bucket value covering the ``p``-th percentile
        (``0 < p <= 100``); 0 for an empty histogram."""
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if not self.total:
            return 0
        # ceil(total * p / 100) in exact integer arithmetic: expanding p
        # into its integer numerator/denominator keeps bucket-boundary
        # ranks exact where float multiplication would round (e.g. p50 of
        # 2**53 + 1 samples lands one rank low in binary64).
        num, den = p.as_integer_ratio()
        rank = max(1, -(-self.total * num // (100 * den)))
        cumulative = 0
        for value, count in self._sorted_buckets():
            cumulative += count
            if cumulative >= rank:
                return value
        return self.max  # unreachable; defensive

    def mean(self) -> float:
        """Bucket-resolution mean (exact below ``linear_limit``)."""
        if not self.total:
            return 0.0
        return sum(v * c for v, c in self._sorted_buckets()) / self.total

    def summary(self) -> Dict[str, float]:
        """The tail statistics surfaced in results and CLI output."""
        if not self.total:
            return {"count": 0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.total,
            "min": float(self.min),
            "max": float(self.max),
            "p50": float(self.percentile(50)),
            "p95": float(self.percentile(95)),
            "p99": float(self.percentile(99)),
        }

    def to_json(self) -> dict:
        """JSON-compatible dict (sorted sparse buckets)."""
        return {
            "linear_limit": self.linear_limit,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": [[v, c] for v, c in self._sorted_buckets()],
        }

    def __len__(self) -> int:
        return len(self.counts)

    def __repr__(self) -> str:
        return (f"StreamingHistogram(total={self.total}, min={self.min}, "
                f"max={self.max}, buckets={len(self.counts)})")


def merge_histograms(histograms: Iterable[StreamingHistogram]
                     ) -> StreamingHistogram:
    """A fresh histogram holding the union of all samples."""
    merged: Optional[StreamingHistogram] = None
    for histogram in histograms:
        if merged is None:
            merged = StreamingHistogram(histogram.linear_limit)
        merged.merge(histogram)
    return merged if merged is not None else StreamingHistogram()
