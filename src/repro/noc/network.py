"""Mesh network assembly and the cycle loop.

A :class:`MeshNetwork` owns routers, channels, per-node injection source
queues and packet reassembly at ejection.  The closed-loop accelerator model
and the open-loop harness both drive it through the same small interface:

* ``try_inject(packet, cycle)`` — queue a packet at its source node's
  network interface; fails (returns ``False``) when the bounded source queue
  is full, which is how memory-controller stalls (Figure 11) arise.
* ``set_ejection_handler(coord, fn)`` — callback invoked with each fully
  reassembled packet.
* ``step(cycle)`` — advance one interconnect clock.
"""

from __future__ import annotations

import os
import random
from collections import deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Deque, Dict, List, Optional, Tuple

from .channel import Channel
from .invariants import DeadlockError, InvariantChecker, format_network_state
from .packet import Flit, Packet
from .router import NEVER, Router, RouterSpec
from .routing import RoutingAlgorithm
from .stats import NetworkStats
from .topology import Coord, Direction, Mesh, injection_port
from .vc import VcConfig


@dataclass(frozen=True)
class NocParams:
    """Physical parameters of one network (Table III)."""

    channel_width: int = 16          # bytes per flit
    vc_buffer_depth: int = 8         # flits per VC
    channel_latency: int = 1
    credit_delay: int = 1
    #: Capacity of each node's injection source queue in flits.  ``None``
    #: means unbounded (open-loop convention: queueing time is part of
    #: packet latency).  Closed-loop runs use a small bound so that a backed
    #: up reply network stalls the memory controller.
    source_queue_flits: Optional[int] = 16
    #: Run the full invariant audit every this many cycles (0 = off).
    #: Audits are read-only, so results are bit-identical with or without.
    check_interval: int = 0
    #: Raise :class:`~repro.noc.invariants.DeadlockError` with a state dump
    #: if no flit moves for this many consecutive non-idle cycles (0 = off).
    watchdog_cycles: int = 0


#: Backend name -> switch method, shared by the ``use_stepper`` context
#: managers of ``MeshNetwork``, ``NetworkSystem`` and ``Accelerator``.
STEPPER_SWITCHES = {
    "reference": "use_reference_stepper",
    "event": "use_event_stepper",
    "batched": "use_batched_stepper",
}


class _StepperContext:
    """Re-entrant backend switch: applies ``backend`` on entry, restores
    whatever was active before on exit.  Works on any object exposing
    ``stepper_backend`` and the three ``use_*_stepper`` methods."""

    def __init__(self, target, backend: str) -> None:
        if backend not in STEPPER_SWITCHES:
            raise ValueError(
                f"unknown stepper backend {backend!r}; "
                f"known: {sorted(STEPPER_SWITCHES)}")
        self._target = target
        self._backend = backend
        self._previous: Optional[str] = None

    def __enter__(self):
        self._previous = self._target.stepper_backend
        getattr(self._target, STEPPER_SWITCHES[self._backend])()
        return self._target

    def __exit__(self, *exc) -> bool:
        getattr(self._target, STEPPER_SWITCHES[self._previous])()
        return False


class _SourcePort:
    """Injection state machine for one injection port of a node.

    Writes at most one flit per cycle into the router's injection buffer,
    keeping each packet contiguous within its chosen VC.
    """

    __slots__ = ("port_id", "fifo", "flits", "vc")

    def __init__(self, port_id) -> None:
        self.port_id = port_id
        self.fifo: Deque[Packet] = deque()
        self.flits: Optional[Deque[Flit]] = None
        self.vc: Optional[int] = None


class MeshNetwork:
    """A single physical 2D-mesh network."""

    def __init__(self, mesh: Mesh, specs: Dict[Coord, RouterSpec],
                 params: NocParams, vc_config: VcConfig,
                 routing: RoutingAlgorithm, seed: int = 1,
                 name: str = "net") -> None:
        self.mesh = mesh
        self.params = params
        # Injection-path constants (``params`` is immutable after build).
        self._channel_width = params.channel_width
        self._source_cap = params.source_queue_flits
        self.vc_config = vc_config
        self.routing = routing
        # Bound once; never reassigned.  ``None`` marks routings whose
        # ``plan`` writes exactly the Packet routing-state defaults, so the
        # injection hot path can skip the call for freshly built packets.
        self._plan = (None if routing.plan_writes_defaults
                      else routing.plan)
        self.name = name
        self.cycle = 0
        self.stats = NetworkStats()
        self._rng = random.Random(seed)
        self._handlers: Dict[Coord, Callable[[Packet, int], None]] = {}
        self._reassembly: Dict[int, int] = {}

        #: Channels with flits or credits in flight (insertion-ordered so
        #: traversal stays deterministic); idle channels are never touched
        #: by the cycle loop.
        self._active_channels: Dict[Channel, None] = {}
        #: True while any router may hold buffered flits; cleared by a full
        #: scan that finds every router empty (reference stepper only).
        self._routers_active = False
        #: Total flits queued across all source ports (all nodes).
        self._source_flits = 0
        #: Total flits buffered inside routers (maintained by both steppers;
        #: makes ``idle`` O(1)).
        self._buffered_flits = 0
        #: Lazy-deletion min-heap of ``(wake_cycle, router_index)`` driving
        #: the event-driven router phase; a heap entry is genuine iff it
        #: equals the router's current ``wake`` (see DESIGN.md §13).
        self._wake_heap: List[Tuple[int, int]] = []
        #: Reused per-cycle scratch (drained channels / due router indices).
        self._channel_scratch: List[Channel] = []
        self._due_scratch: List[int] = []
        #: Routers re-armed for exactly the next cycle (heap bypass).
        self._due_next: List[int] = []
        #: Debug escape hatch: run the reference exhaustive-scan stepper
        #: instead of the event-driven one (also flippable at idle via
        #: ``use_reference_stepper``/``use_event_stepper``).  The batched
        #: struct-of-arrays core (``REPRO_BATCHED_STEPPER=1`` /
        #: ``use_batched_stepper``) is the third backend; the reference
        #: env var wins when both are set.
        self._scan_stepper = os.environ.get(
            "REPRO_REFERENCE_STEPPER") == "1"
        self._batched = None
        self._want_batched = (not self._scan_stepper and os.environ.get(
            "REPRO_BATCHED_STEPPER") == "1")
        self._event_stepper = not (self._scan_stepper
                                   or self._want_batched)

        self.routers: Dict[Coord, Router] = {}
        self.channels: List[Channel] = []
        for coord in mesh.coords():
            spec = specs.get(coord, RouterSpec(coord))
            if spec.coord != coord:
                raise ValueError(f"spec coord {spec.coord} placed at {coord}")
            router = Router(spec, vc_config, params.vc_buffer_depth, routing)
            router.attach_ejection(sink=self)
            self.routers[coord] = router

        for coord, router in self.routers.items():
            for direction, neighbor in mesh.neighbors(coord):
                channel = Channel(params.channel_latency, params.credit_delay)
                dst = self.routers[neighbor]
                dst_port = direction.opposite()
                channel.connect(router, direction, dst, dst_port)
                channel.watch = self._wake_channel
                router.attach_output_channel(direction, channel)
                dst.attach_input_channel(dst_port, channel)
                self.channels.append(channel)

        self._router_list: Tuple[Router, ...] = tuple(self.routers.values())
        for idx, router in enumerate(self._router_list):
            router.net_index = idx
            router.finalize()
        if self._want_batched:
            from .batched import BatchedCore
            self._batched = BatchedCore(self)

        #: Source-side state is indexed by node row (mesh order, equal to
        #: ``Router.net_index``): plain-list indexing keeps the per-cycle
        #: drain loop and ``try_inject`` off the Coord-hashing path.
        #: ``_sources`` stays as the coord-keyed view for audits/tests.
        self._sources: Dict[Coord, List[_SourcePort]] = {}
        self._node_index: Dict[Coord, int] = {}
        self._source_rows: List[Tuple[Coord, List[_SourcePort], Router]] = []
        self._source_occ: List[int] = []
        self._source_rr: List[int] = []
        #: Per node, its sole source port when it has exactly one (the
        #: common case) — lets ``try_inject`` skip the round-robin walk.
        self._source_only: List[Optional[_SourcePort]] = []
        #: Batched stepper only: nodes whose last drain pass moved nothing.
        #: A fruitless pass has no side effects, and its outcome can only
        #: change when a grant pops a flit out of an injection-port buffer
        #: (space frees) or a fresh packet becomes the head of an idle
        #: source port — both of which clear the flag.  The event/scan
        #: steppers ignore it (they re-attempt every cycle).
        self._source_stuck: List[bool] = []
        for idx, coord in enumerate(mesh.coords()):
            ports = [
                _SourcePort(injection_port(k))
                for k in range(self.routers[coord].spec.num_inject_ports)
            ]
            self._sources[coord] = ports
            self._node_index[coord] = idx
            self._source_rows.append((coord, ports, self.routers[coord]))
            self._source_occ.append(0)
            self._source_rr.append(0)
            self._source_only.append(ports[0] if len(ports) == 1 else None)
            self._source_stuck.append(False)

        #: Opt-in invariant checker; ``None`` keeps the hot path at a
        #: single attribute test per cycle.
        self.checker: Optional[InvariantChecker] = None
        #: Opt-in packet tracer (``repro.telemetry``); attached via
        #: :meth:`enable_tracer`, ``None`` keeps each event site at a
        #: single attribute test.
        self.tracer = None
        if params.check_interval or params.watchdog_cycles:
            self.enable_checks(params.check_interval,
                               params.watchdog_cycles)

    # -- public interface ---------------------------------------------------

    def set_ejection_handler(self, coord: Coord,
                             handler: Callable[[Packet, int], None]) -> None:
        self._handlers[coord] = handler

    def enable_checks(self, check_interval: int = 64,
                      watchdog_cycles: int = 0) -> InvariantChecker:
        """Attach (or retune) the runtime invariant checker."""
        self.checker = InvariantChecker(self, check_interval,
                                        watchdog_cycles)
        return self.checker

    def enable_tracer(self, tracer) -> None:
        """Attach (or detach, with ``None``) a read-only per-hop packet
        tracer to this network, its routers and its channels.  Tracing
        never mutates simulation state, so results are bit-identical with
        it on or off."""
        self.tracer = tracer
        for router in self.routers.values():
            router.tracer = tracer
        for channel in self.channels:
            channel.tracer = tracer

    def carries(self, packet: Packet) -> bool:
        return self.vc_config.carries(packet.traffic_class)

    @property
    def _source_occupancy(self) -> Dict[Coord, int]:
        """Coord-keyed view of the per-node source occupancy (audits,
        telemetry sampling — the cycle loop uses ``_source_occ``)."""
        occ = self._source_occ
        return {coord: occ[i] for coord, i in self._node_index.items()}

    def source_queue_occupancy(self, coord: Coord) -> int:
        return self._source_occ[self._node_index[coord]]

    def try_inject(self, packet: Packet, cycle: int) -> bool:
        """Queue ``packet`` at its source network interface."""
        num_flits = packet.num_flits(self._channel_width)
        cap = self._source_cap
        idx = self._node_index[packet.src]
        occupancy = self._source_occ[idx]
        if cap is not None and occupancy + num_flits > cap:
            return False
        plan = self._plan
        if plan is not None:
            plan(packet, self._rng)
        port = self._source_only[idx]
        if port is None:
            # Several injection ports: rotate round-robin between them.
            # (A single port makes the rotation a fixed point — skipped.)
            ports = self._source_rows[idx][1]
            rr = self._source_rr[idx]
            self._source_rr[idx] = (rr + 1) % len(ports)
            port = ports[rr]
        if (self._batched is not None and port.flits is None
                and not port.fifo):
            # The packet becomes the head of an idle port: the node's next
            # drain pass can genuinely progress again.
            self._source_stuck[idx] = False
        port.fifo.append(packet)
        self._source_occ[idx] = occupancy + num_flits
        self._source_flits += num_flits
        stats = self.stats
        stats.packets_offered += 1
        stats.flits_offered += num_flits
        if self.tracer is not None:
            self.tracer.on_offer(packet, self.name, cycle)
        return True

    def step(self, cycle: Optional[int] = None) -> None:
        """Advance one interconnect cycle (event-driven).

        Only channels with traffic in flight are delivered, only routers
        whose wake time is due are stepped (in ascending router-index order,
        i.e. exactly the mesh order the reference scan walks), and the
        source drain runs only for nodes with queued flits.  A fully idle
        network reduces to a cycle-counter bump.  The scheduling is
        deterministic, so results are bit-identical to the exhaustive scan
        (``_step_scan``, its twin — semantic changes must land in both; the
        golden tests in tests/test_event_core.py compare them).
        """
        self.cycle = self.cycle + 1 if cycle is None else cycle
        now = self.cycle
        self.stats.cycles = now
        if self._scan_stepper:
            self._step_scan(now)
            return
        if self._batched is not None:
            self._step_batched(now)
            return
        heap = self._wake_heap
        if self._active_channels:
            # ``deliver`` never activates or deactivates other channels, so
            # iterate the dict directly; drained channels are collected into
            # a reused scratch list instead of copying the dict every cycle.
            scratch = self._channel_scratch
            for channel in self._active_channels:
                n = channel.deliver(now)
                if n:
                    self._buffered_flits += n
                    self.stats.link_flit_hops += n
                    self.stats.buffer_writes += n
                    dst = channel.dst_router
                    # The arriving flits sleep through the pipeline; any
                    # earlier obligation is already in ``dst.wake``.
                    wake = now + dst.pipeline_latency
                    if wake < dst.wake:
                        dst.wake = wake
                        heappush(heap, (wake, dst.net_index))
                if channel.delivered_credits:
                    # Credits can unblock the receiving router this very
                    # cycle (the channel phase precedes the router phase,
                    # exactly as the scan sees it).
                    src = channel.src_router
                    if src.occupancy and now < src.wake:
                        src.wake = now
                        heappush(heap, (now, src.net_index))
                if not channel.busy:
                    scratch.append(channel)
            if scratch:
                for channel in scratch:
                    del self._active_channels[channel]
                del scratch[:]
        due_next = self._due_next
        if due_next or (heap and heap[0][0] <= now):
            routers = self._router_list
            due = self._due_scratch
            if due_next:
                # Routers that re-armed for exactly the next cycle bypass
                # the heap (the common case under load: a blocked router
                # re-arms every cycle).  Nothing can schedule them earlier,
                # so every entry is a valid claim.
                for idx in due_next:
                    router = routers[idx]
                    if router.wake == now:
                        router.wake = NEVER
                        due.append(idx)
                del due_next[:]
            while heap and heap[0][0] <= now:
                wake, idx = heappop(heap)
                router = routers[idx]
                if router.wake == wake:     # genuine entry, not superseded
                    router.wake = NEVER
                    due.append(idx)
            # Ascending index = mesh coords order = reference scan order, so
            # ejection handlers (and thus RNG draws) fire in the same order.
            due.sort()
            next_cycle = now + 1
            for idx in due:
                router = routers[idx]
                before = router.occupancy
                for flit, _port in router.step(now):
                    self._eject(flit, now)
                moved = before - router.occupancy
                self._buffered_flits -= moved
                self.stats.crossbar_traversals += moved
                self.stats.buffer_reads += moved
                wake = router.next_wake(now)
                if wake != NEVER:
                    router.wake = wake
                    if wake == next_cycle:
                        due_next.append(idx)
                    else:
                        heappush(heap, (wake, idx))
            del due[:]
        if self._source_flits:
            occ = self._source_occ
            for idx, (coord, ports, router) in enumerate(self._source_rows):
                if occ[idx]:
                    for port in ports:
                        self._drain_source(idx, coord, router, port, now)
        checker = self.checker
        if checker is not None:
            checker.on_cycle(now)

    def _step_scan(self, now: int) -> None:
        """Reference exhaustive-scan cycle body (the pre-event-core loop).

        Twin of the event-driven body in ``step``; kept as the bit-identity
        oracle and the benchmark baseline (``REPRO_REFERENCE_STEPPER=1``).
        """
        flits_arrived = False
        if self._active_channels:
            scratch = self._channel_scratch
            for channel in self._active_channels:
                n = channel.deliver(now)
                if n:
                    flits_arrived = True
                    self._buffered_flits += n
                    self.stats.link_flit_hops += n
                    self.stats.buffer_writes += n
                if not channel.busy:
                    scratch.append(channel)
            if scratch:
                for channel in scratch:
                    del self._active_channels[channel]
                del scratch[:]
        if self._routers_active or flits_arrived:
            busy = False
            for router in self._router_list:
                if router.occupancy:
                    before = router.occupancy
                    for flit, _port in router.step_reference(now):
                        self._eject(flit, now)
                    moved = before - router.occupancy
                    self._buffered_flits -= moved
                    self.stats.crossbar_traversals += moved
                    self.stats.buffer_reads += moved
                    if router.occupancy:
                        busy = True
            self._routers_active = busy
        if self._source_flits:
            occ = self._source_occ
            for idx, (coord, ports, router) in enumerate(self._source_rows):
                if occ[idx]:
                    for port in ports:
                        self._drain_source(idx, coord, router, port, now)
        checker = self.checker
        if checker is not None:
            checker.on_cycle(now)

    def _step_batched(self, now: int) -> None:
        """Batched struct-of-arrays cycle body (see ``repro.noc.batched``).

        Twin of the event-driven body in ``step`` and the exhaustive
        ``_step_scan``: channels deliver in insertion order, then one
        vectorized sweep replaces the per-router phase, then sources
        drain.  Semantic changes must land in all three backends; the
        golden matrix in tests/test_stepper_equivalence.py compares them.

        The channel and source phases are split out so the fleet stepper
        (``repro.noc.fleet``) can interleave them with one global screen.
        """
        self._batched_channels(now)
        if self._buffered_flits:
            self._batched.sweep(now)
        self._batched_sources(now)
        checker = self.checker
        if checker is not None:
            checker.on_cycle(now)

    def _batched_channels(self, now: int) -> None:
        """Channel-delivery phase of the batched cycle body."""
        if self._active_channels:
            scratch = self._channel_scratch
            for channel in self._active_channels:
                n = channel.deliver(now)
                if n:
                    self._buffered_flits += n
                    self.stats.link_flit_hops += n
                    self.stats.buffer_writes += n
                if not channel.busy:
                    scratch.append(channel)
            if scratch:
                for channel in scratch:
                    del self._active_channels[channel]
                del scratch[:]

    def _batched_sources(self, now: int) -> None:
        """Source-drain phase of the batched cycle body."""
        if self._source_flits:
            occ = self._source_occ
            stuck = self._source_stuck
            drain = self._drain_source
            rows = self._source_rows
            # Row unpacking deferred past the skip tests: at saturation
            # almost every node is stuck, so the common iteration is two
            # list reads.
            for idx in range(len(rows)):
                if occ[idx] and not stuck[idx]:
                    coord, ports, router = rows[idx]
                    progressed = False
                    for port in ports:
                        if drain(idx, coord, router, port, now):
                            progressed = True
                    if not progressed:
                        # Fruitless pass (no side effects); skip this node
                        # until a grant frees injection space or a fresh
                        # head packet arrives.
                        stuck[idx] = True

    def use_reference_stepper(self) -> None:
        """Switch to the exhaustive-scan stepper (debug/benchmark oracle).

        Only legal while idle: the event scheduler's per-router anchors are
        meaningless to the scan and vice versa.
        """
        self._switch_stepper()
        self._scan_stepper = True

    def use_event_stepper(self) -> None:
        """Switch (back) to the event-driven stepper.  Idle-only."""
        self._switch_stepper()
        self._event_stepper = True

    def use_batched_stepper(self) -> None:
        """Switch to the batched struct-of-arrays stepper.  Idle-only."""
        self._switch_stepper()
        from .batched import BatchedCore
        self._batched = BatchedCore(self)

    def _switch_stepper(self) -> None:
        """Common teardown for a stepper switch: only legal while idle
        (the schedulers' per-router anchors are mutually meaningless),
        resets every backend to its inert state."""
        if not self.idle:
            raise RuntimeError(
                f"network {self.name!r}: stepper can only be switched while "
                "idle")
        self._scan_stepper = False
        self._event_stepper = False
        if self._batched is not None:
            self._batched.detach()
            self._batched = None
        del self._wake_heap[:]
        del self._due_next[:]
        for router in self._router_list:
            router.wake = NEVER
        self._source_stuck[:] = [False] * len(self._source_stuck)

    @property
    def stepper_backend(self) -> str:
        """Name of the active cycle-core backend."""
        if self._scan_stepper:
            return "reference"
        if self._batched is not None:
            return "batched"
        return "event"

    def use_stepper(self, backend: str):
        """Context manager: run with ``backend`` ("reference" | "event" |
        "batched"), restoring the previous backend on exit.  Nests; both
        the switch and the restore are idle-only like ``use_*_stepper``."""
        return _StepperContext(self, backend)

    def channel_utilization(self) -> Dict[Tuple[Coord, Coord], float]:
        """Flits carried per cycle for every directed mesh link — the
        congestion map that exposes e.g. the top/bottom-row hotspots of the
        baseline MC placement."""
        if not self.cycle:
            return {}
        return {
            (ch.src_router.coord, ch.dst_router.coord):
                ch.flits_carried / self.cycle
            for ch in self.channels
        }

    def peak_channel_utilization(self) -> float:
        util = self.channel_utilization()
        return max(util.values()) if util else 0.0

    @property
    def idle(self) -> bool:
        """True when no flit is buffered, in flight, or waiting at a source.

        O(1): ``_source_flits`` mirrors the per-node source occupancy,
        ``_buffered_flits`` the per-router occupancy, and a channel is in
        ``_active_channels`` exactly while it has flits or credits in
        flight.
        """
        return not (self._source_flits or self._buffered_flits
                    or self._active_channels)

    def run_until_idle(self, max_cycles: int = 1_000_000) -> int:
        """Drain all traffic; returns the cycle count.  Test helper."""
        start = self.cycle
        while not self.idle:
            if self.cycle - start > max_cycles:
                raise DeadlockError(
                    f"network {self.name!r} failed to drain within "
                    f"{max_cycles} cycles (deadlock?)\n"
                    + format_network_state(self))
            self.step()
        return self.cycle - start

    # -- internals ----------------------------------------------------------

    def _wake_channel(self, channel: Channel) -> None:
        """Channel watch hook: mark ``channel`` as carrying traffic."""
        self._active_channels[channel] = None

    def _drain_source(self, idx: int, coord: Coord, router: Router,
                      port: _SourcePort, now: int) -> bool:
        """Deliver at most one source flit into the router; returns whether
        a flit was delivered (False implies the call mutated nothing)."""
        if port.flits is None:
            if not port.fifo:
                return False
            packet = port.fifo[0]
            vc = self._pick_injection_vc(router, port.port_id, packet)
            if vc is None:
                return False
            port.fifo.popleft()
            port.flits = deque(packet.make_flits(self._channel_width))
            port.vc = vc
            packet.injected = now
            self.stats.record_injection(packet, len(port.flits))
        if router.injection_space(port.port_id, port.vc) > 0:
            flit = port.flits.popleft()
            router.deliver_flit(port.port_id, port.vc, flit, now)
            self._source_occ[idx] -= 1
            self._source_flits -= 1
            self._buffered_flits += 1
            self.stats.buffer_writes += 1
            self._routers_active = True
            if self._event_stepper:
                # The injected flit sleeps through the pipeline; schedule
                # the router for the flit's ready time.  (The batched core
                # needs no wake: deliver_flit updated its mirrors.)
                wake = now + router.pipeline_latency
                if wake < router.wake:
                    router.wake = wake
                    heappush(self._wake_heap, (wake, router.net_index))
            if not port.flits:
                port.flits = None
                port.vc = None
            return True
        return False

    def _pick_injection_vc(self, router: Router, port_id,
                           packet: Packet) -> Optional[int]:
        allowed = self.vc_config.allowed_vcs(packet.traffic_class,
                                             packet.group)
        in_vcs = router.in_ports[port_id]
        depth = router.buffer_depth
        best_vc = None
        best_space = 0
        for vc in allowed:
            space = depth - len(in_vcs[vc].buffer)
            if space > best_space:
                best_vc, best_space = vc, space
        # Require room for the head flit now; the rest streams in over the
        # following cycles as the VC drains.
        return best_vc if best_space > 0 else None

    def _eject(self, flit: Flit, now: int) -> None:
        packet = flit.packet
        total = packet.num_flits(self.params.channel_width)
        got = self._reassembly.get(packet.pid, 0) + 1
        if got < total:
            self._reassembly[packet.pid] = got
            return
        self._reassembly.pop(packet.pid, None)
        packet.ejected = now
        self.stats.record_ejection(packet, total)
        if self.tracer is not None:
            self.tracer.on_eject(packet, now)
        handler = self._handlers.get(packet.dest)
        if handler is not None:
            handler(packet, now)
