"""Four-way determinism contract of the cycle-core backends.

The repo carries four interchangeable ways to step a network: the
reference exhaustive scan (``use_reference_stepper`` /
``REPRO_REFERENCE_STEPPER``), the event-driven stepper (wake-scheduled
routers, DESIGN.md §13), the batched struct-of-arrays core
(``use_batched_stepper`` / ``REPRO_BATCHED_STEPPER``, DESIGN.md §14) and
the lockstep fleet stepper that batches several independent simulations
through one shared screen (``repro.noc.fleet`` / ``REPRO_FLEET``,
DESIGN.md §18).  They must be bit-identical — not statistically close —
on every design the builder can produce, or a result could silently
depend on which backend happened to run it.

This module pins that contract four ways:

* a golden matrix over the design space (baseline DOR, checkerboard
  routing, channel-sliced double network) at low and saturated load, with
  the invariant checker and packet tracer off and on, asserting equal
  result payloads, equal ``NetworkStats`` snapshots and equal final
  network state dumps for every backend — including a fleet leg where
  the cell under test rides in a heterogeneous lockstep fleet;
* a randomized fuzz sweep (seeds, mesh shapes, injection rates, VC/buffer
  configurations) comparing batched — and mixed-shape fleets — against
  reference;
* the selection plumbing itself — env-var precedence and the nesting /
  restore behaviour of the ``use_stepper`` context helper — plus the
  ``audit_event_scheduling`` mirror audit under the batched core and
  mid-stream under a fleet.
"""

import dataclasses
import random
import re

import pytest

from repro.core.builder import (build, checked_variant, design_by_name,
                                open_loop_variant)
from repro.noc.fleet import FleetRunner
from repro.noc.invariants import audit_event_scheduling, format_system_state
from repro.noc.openloop import OpenLoopRunner
from repro.noc.stats import merge_stats
from repro.noc.topology import Mesh
from repro.noc.traffic import UniformManyToFew
from repro.system.accelerator import build_chip
from repro.telemetry import TelemetryHub, TelemetrySpec
from repro.workloads.profiles import profile

BACKENDS = ("reference", "event", "batched")
#: Baseline, checkerboard routing, channel-sliced double network.
DESIGNS = ("TB-DOR", "CP-CR-4VC", "Double-CP-CR")
#: Well below and well past saturation of the 6x6 baseline mesh.
RATES = (0.02, 0.30)

WARMUP, MEASURE = 100, 200
SEED = 11


def _select(system, backend):
    if backend == "reference":
        system.use_reference_stepper()
    elif backend == "batched":
        system.use_batched_stepper()
    else:
        assert backend == "event"  # the construction-time default


def _normalized_state(system):
    """``format_system_state`` with packet ids renumbered by first
    appearance: pids come from a process-global counter, so two otherwise
    identical runs print different absolute ids."""
    seen = {}

    def rename(match):
        pid = match.group(1)
        return f"p{seen.setdefault(pid, len(seen))}"

    return re.sub(r"\bp(\d+)\b", rename, format_system_state(system))


def _stats_snapshot(system):
    """Every observable ``NetworkStats`` counter, derived rate and
    histogram tail, per network slice — the "bit-identical stats" half of
    the contract (the state dump covers buffers/credits/pointers)."""
    snapshot = []
    for net in getattr(system, "networks", [system]):
        s = net.stats
        snapshot.append({
            "name": net.name,
            "cycles": s.cycles,
            "offered": (s.packets_offered, s.flits_offered),
            "injected": (s.packets_injected, s.flits_injected),
            "ejected": (s.packets_ejected, s.flits_ejected),
            # the power model's always-on activity counters are part of
            # the bit-identity contract: every stepper must count every
            # crossbar grant, buffer access and link delivery identically
            "activity": (s.crossbar_traversals, s.buffer_reads,
                         s.buffer_writes, s.link_flit_hops),
            "accepted_rate": s.accepted_flit_rate(),
            "per_class": {
                tclass.name: (cs.packets, cs.flits, cs.latency_sum,
                              cs.network_latency_sum,
                              cs.latency_hist.summary(),
                              cs.network_latency_hist.summary())
                for tclass, cs in s.per_class.items()
            },
            "node_injected": sorted(s.node_injected_flits.items()),
            "node_ejected": sorted(s.node_ejected_flits.items()),
        })
    return snapshot


def _open_member(design_name, rate, *, seed=SEED, checked=False,
                 traced=False):
    """Build one open-loop (system, runner, hub) cell without running it
    — the golden tests run it solo, the fleet legs enlist it in a
    :class:`FleetRunner`."""
    design = open_loop_variant(design_by_name(design_name))
    if checked:
        design = checked_variant(design, check_interval=32,
                                 watchdog_cycles=20_000)
    system = build(design, Mesh(6, 6), num_mcs=8, seed=seed)
    hub = None
    if traced:
        hub = TelemetryHub(TelemetrySpec(trace=True))
        hub.attach_network(system)
    runner = OpenLoopRunner(system, system.compute_nodes, system.mc_nodes,
                            UniformManyToFew(system.mc_nodes), rate,
                            seed=seed)
    return system, runner, hub


def _cell(system, runner, point):
    return {
        "payload": point.to_json(),
        "stats": _stats_snapshot(system),
        "state": _normalized_state(system),
        "hist": runner._lat_hist.summary(),
    }


def _open_cell(design_name, rate, backend, *, checked=False, traced=False):
    system, runner, hub = _open_member(design_name, rate, checked=checked,
                                       traced=traced)
    _select(system, backend)
    point = runner.run(warmup=WARMUP, measure=MEASURE)
    return _cell(system, runner, point), hub


@pytest.mark.parametrize("design_name", DESIGNS)
@pytest.mark.parametrize("rate", RATES)
def test_four_way_golden_matrix(design_name, rate):
    """reference == event == batched == fleet on result payload, stats
    snapshot and final state, with the checker and the tracer off and on.

    The instrumented legs run under the batched core (the newest backend;
    the event core's instrumented legs are pinned in test_event_core.py):
    read-only instrumentation must not perturb any of the backends either.
    The fleet leg runs the cell under test inside a heterogeneous
    lockstep fleet (different sibling designs, rates and seeds) — the
    planner would only ever fleet low-rate points, but bit-identity must
    hold at any rate, so both matrix rates get a fleet leg.
    """
    oracle, _ = _open_cell(design_name, rate, "reference")
    for backend in ("event", "batched"):
        cell, _ = _open_cell(design_name, rate, backend)
        assert cell == oracle, f"{backend} diverged from reference"
    checked, _ = _open_cell(design_name, rate, "batched", checked=True)
    assert checked == oracle, "invariant checker perturbed the batched core"
    traced, hub = _open_cell(design_name, rate, "batched", traced=True)
    assert traced == oracle, "packet tracer perturbed the batched core"
    assert hub.tracer.completed, "tracer saw no packets"

    members = [
        _open_member(design_name, rate),
        _open_member("TB-DOR", 0.05, seed=SEED + 1),
        _open_member(design_name, rate, seed=SEED + 2),
    ]
    points = FleetRunner([r for _, r, _ in members]).run(
        warmup=WARMUP, measure=MEASURE)
    system, runner, _ = members[0]
    assert _cell(system, runner, points[0]) == oracle, \
        "fleet member diverged from solo reference"


def test_fleet_checker_and_tracer_per_member():
    """The invariant checker and the packet tracer keep working per fleet
    member, and perturb nothing: the checked-and-traced member's cell is
    bit-identical to the solo reference run."""
    oracle, _ = _open_cell("TB-DOR", 0.30, "reference")
    members = [
        _open_member("TB-DOR", 0.30, checked=True, traced=True),
        _open_member("CP-CR-4VC", 0.02, seed=SEED + 1, checked=True),
    ]
    points = FleetRunner([r for _, r, _ in members]).run(
        warmup=WARMUP, measure=MEASURE)
    system, runner, hub = members[0]
    assert _cell(system, runner, points[0]) == oracle
    assert hub.tracer.completed, "tracer saw no packets in the fleet"


@pytest.mark.parametrize("design_name", ("TB-DOR", "Double-CP-CR"))
def test_closed_loop_three_way(design_name):
    """All three chip-level steppers agree on a finite BIN kernel whose
    drained tail exercises the idle fast paths."""

    def run(backend):
        chip = build_chip(profile("BIN"), design=design_by_name(design_name),
                          seed=SEED, instructions_per_warp=8)
        _select(chip, backend)
        result = chip.run(warmup=100, measure=900).to_json()
        return result, _stats_snapshot(chip.network)

    oracle = run("reference")
    assert run("event") == oracle
    assert run("batched") == oracle


# -- randomized fuzz sweep -------------------------------------------------

def _fuzz_cases(n):
    """Deterministic pseudo-random (design, mesh, rate, seed) cases.

    The generator seed is fixed so failures reproduce; the cases span
    mesh shapes (square and non-square), loads from idle to deep
    saturation, VC counts, buffer depths and source-queue capacities
    across all three design families.
    """
    master = random.Random(0xB47C4ED)
    for _ in range(n):
        name = master.choice(DESIGNS)
        design = open_loop_variant(design_by_name(name))
        if design.routing == "dor":
            # Extra VC / shallow-buffer variation is only free of design
            # constraints on the plain-DOR baseline.
            # (source queues stay unbounded — the open-loop harness
            # requires reply injection to always succeed.)
            design = dataclasses.replace(
                design,
                vcs_per_class=master.choice((1, 2)),
                vc_buffer_depth=master.choice((4, 8)),
            )
        yield (design,
               Mesh(master.choice((4, 5, 6)), master.choice((4, 5, 6))),
               master.choice((4, 8)),
               master.choice((0.02, 0.05, 0.1, 0.2, 0.35)),
               master.randrange(1 << 30))


def _fuzz_run(design, mesh, num_mcs, rate, seed, backend):
    system = build(design, mesh, num_mcs=num_mcs, seed=seed)
    _select(system, backend)
    runner = OpenLoopRunner(system, system.compute_nodes, system.mc_nodes,
                            UniformManyToFew(system.mc_nodes), rate,
                            seed=seed)
    point = runner.run(warmup=40, measure=100)
    return {
        "payload": point.to_json(),
        "stats": _stats_snapshot(system),
        "state": _normalized_state(system),
    }


def test_fuzz_batched_matches_reference():
    """~50 randomized configurations: batched == reference, bit for bit,
    including the final in-flight network state."""
    for case, (design, mesh, num_mcs, rate, seed) in \
            enumerate(_fuzz_cases(48)):
        ref = _fuzz_run(design, mesh, num_mcs, rate, seed, "reference")
        bat = _fuzz_run(design, mesh, num_mcs, rate, seed, "batched")
        assert bat == ref, (
            f"fuzz case {case} diverged: {design.name} mesh="
            f"{mesh.cols}x{mesh.rows} mcs={num_mcs} rate={rate} "
            f"seed={seed}")


def test_fuzz_fleet_matches_reference():
    """Heterogeneous lockstep fleets — members mixing design families,
    mesh shapes, MC counts, rates and seeds inside one fleet — against
    solo reference runs, bit for bit including final in-flight state.

    The run_tasks planner only ever fleets same-shape, low-rate points;
    the core must not care, so the fuzz deliberately fleets what the
    planner never would."""
    cases = list(_fuzz_cases(16))
    for lo in range(0, len(cases), 4):
        chunk = cases[lo:lo + 4]
        runners = []
        for design, mesh, num_mcs, rate, seed in chunk:
            system = build(design, mesh, num_mcs=num_mcs, seed=seed)
            runners.append(
                OpenLoopRunner(system, system.compute_nodes,
                               system.mc_nodes,
                               UniformManyToFew(system.mc_nodes), rate,
                               seed=seed))
        points = FleetRunner(runners).run(warmup=40, measure=100)
        for (design, mesh, num_mcs, rate, seed), runner, point in zip(
                chunk, runners, points):
            ref = _fuzz_run(design, mesh, num_mcs, rate, seed, "reference")
            got = {
                "payload": point.to_json(),
                "stats": _stats_snapshot(runner.network),
                "state": _normalized_state(runner.network),
            }
            assert got == ref, (
                f"fleet member diverged: {design.name} mesh="
                f"{mesh.cols}x{mesh.rows} mcs={num_mcs} rate={rate} "
                f"seed={seed}")


# -- selection plumbing ----------------------------------------------------

def test_batched_stepper_env_var(monkeypatch):
    """``REPRO_BATCHED_STEPPER=1`` selects the batched core at
    construction time; ``REPRO_REFERENCE_STEPPER=1`` wins when both are
    set (the reference is the debugging escape hatch)."""
    monkeypatch.setenv("REPRO_BATCHED_STEPPER", "1")
    system = build(open_loop_variant(design_by_name("TB-DOR")),
                   Mesh(4, 4), num_mcs=4, seed=SEED)
    assert system.stepper_backend == "batched"
    for net in system.networks:
        assert net._batched is not None

    monkeypatch.setenv("REPRO_REFERENCE_STEPPER", "1")
    system = build(open_loop_variant(design_by_name("TB-DOR")),
                   Mesh(4, 4), num_mcs=4, seed=SEED)
    assert system.stepper_backend == "reference"
    for net in system.networks:
        assert net._batched is None and net._scan_stepper


def test_batched_env_var_on_chip(monkeypatch):
    """The chip builder honours the env var down through its networks."""
    monkeypatch.setenv("REPRO_BATCHED_STEPPER", "1")
    chip = build_chip(profile("BIN"), design=design_by_name("TB-DOR"),
                      seed=SEED, instructions_per_warp=8)
    assert chip.stepper_backend == "batched"


def test_use_stepper_nesting(monkeypatch):
    """The context helper switches and restores, and nests — the inner
    context restores the *outer* backend, not the construction default."""
    # Pin the construction default so the test also passes when the whole
    # suite runs under REPRO_BATCHED_STEPPER=1 (the CI batched leg).
    monkeypatch.delenv("REPRO_BATCHED_STEPPER", raising=False)
    monkeypatch.delenv("REPRO_REFERENCE_STEPPER", raising=False)
    system = build(open_loop_variant(design_by_name("TB-DOR")),
                   Mesh(4, 4), num_mcs=4, seed=SEED)
    assert system.stepper_backend == "event"
    with system.use_stepper("batched") as inside:
        assert inside is system
        assert system.stepper_backend == "batched"
        with system.use_stepper("reference"):
            assert system.stepper_backend == "reference"
        assert system.stepper_backend == "batched"
    assert system.stepper_backend == "event"
    with pytest.raises(ValueError):
        system.use_stepper("vectorised")


def test_audit_event_scheduling_under_batched():
    """The struct-of-arrays mirrors match the authoritative object state
    cell for cell after running hot — audited mid-stream, with traffic
    still in flight."""
    system = build(open_loop_variant(design_by_name("TB-DOR")),
                   Mesh(6, 6), num_mcs=8, seed=SEED)
    system.use_batched_stepper()
    runner = OpenLoopRunner(system, system.compute_nodes, system.mc_nodes,
                            UniformManyToFew(system.mc_nodes), 0.30,
                            seed=SEED)
    runner.run(warmup=50, measure=100)
    for net in system.networks:
        assert net._buffered_flits > 0, "audit must catch a busy network"
        assert audit_event_scheduling(net) == []


def test_audit_event_scheduling_under_fleet():
    """The SoA mirror audit passes mid-stream on every member of a
    lockstep fleet — adopted pool views must stay cell-for-cell faithful
    to the authoritative object state while traffic is still in flight."""
    members = [
        _open_member("TB-DOR", 0.30),
        _open_member("Double-CP-CR", 0.30, seed=SEED + 1),
    ]
    FleetRunner([r for _, r, _ in members]).run(warmup=50, measure=100)
    for system, _, _ in members:
        for net in system.networks:
            assert net._buffered_flits > 0, "audit must catch a busy network"
            assert audit_event_scheduling(net) == []


# -- histogram / merged-stats plumbing on the batched path -----------------

def test_sliced_merge_stats_from_batched_path():
    """``merge_stats`` over the slices of a double network fed by the
    batched core: bit-identical to the reference merge, including the
    streamed latency histograms."""

    def merged(backend):
        system = build(open_loop_variant(design_by_name("Double-CP-CR")),
                       Mesh(6, 6), num_mcs=8, seed=SEED)
        _select(system, backend)
        runner = OpenLoopRunner(system, system.compute_nodes,
                                system.mc_nodes,
                                UniformManyToFew(system.mc_nodes), 0.30,
                                seed=SEED)
        runner.run(warmup=WARMUP, measure=MEASURE)
        stats = merge_stats([net.stats for net in system.networks])
        return stats, runner._lat_hist

    ref_stats, ref_hist = merged("reference")
    bat_stats, bat_hist = merged("batched")
    assert bat_stats.accepted_flit_rate() == ref_stats.accepted_flit_rate()
    assert bat_stats.flits_ejected == ref_stats.flits_ejected
    assert (bat_stats.latency_summary() == ref_stats.latency_summary())
    assert (bat_stats.latency_summary(network_only=True)
            == ref_stats.latency_summary(network_only=True))
    assert bat_hist.summary() == ref_hist.summary()


def test_merge_stats_per_slice_rates_from_batched_windows():
    """The PR-3 per-slice rate contract holds for stats windows produced
    by the batched core: merging windows of *different* cycle counts sums
    the per-slice rates instead of dividing by one window's cycles."""

    def window(measure):
        system = build(open_loop_variant(design_by_name("TB-DOR")),
                       Mesh(5, 5), num_mcs=4, seed=SEED)
        system.use_batched_stepper()
        runner = OpenLoopRunner(system, system.compute_nodes,
                                system.mc_nodes,
                                UniformManyToFew(system.mc_nodes), 0.2,
                                seed=SEED)
        runner.run(warmup=40, measure=measure)
        return system.networks[0].stats

    short, long = window(100), window(250)
    assert short.cycles != long.cycles
    merged = merge_stats([short, long])
    assert merged.accepted_flit_rate() == pytest.approx(
        short.accepted_flit_rate() + long.accepted_flit_rate())
    node = next(iter(long.node_injected_flits))
    assert merged.injection_rate(node) == pytest.approx(
        short.injection_rate(node) + long.injection_rate(node))
