"""Tests for clock domains and rate accumulators."""

import pytest

from repro.system.clocks import ClockConfig, RateAccumulator


class TestClockConfig:
    def test_paper_frequencies(self):
        c = ClockConfig()
        assert c.core_mhz == 1296.0
        assert c.icnt_mhz == 602.0
        assert c.dram_mhz == 1107.0

    def test_ratios(self):
        c = ClockConfig()
        assert c.core_per_icnt == pytest.approx(1296 / 602)
        assert c.dram_per_icnt == pytest.approx(1107 / 602)


class TestRateAccumulator:
    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RateAccumulator(0)

    def test_unity_ratio(self):
        acc = RateAccumulator(1.0)
        assert [acc.advance() for _ in range(5)] == [1] * 5

    def test_double_ratio(self):
        acc = RateAccumulator(2.0)
        assert [acc.advance() for _ in range(3)] == [2, 2, 2]

    def test_fractional_ratio_long_run_exact(self):
        ratio = 1296 / 602
        acc = RateAccumulator(ratio)
        n = 60_200
        total = sum(acc.advance() for _ in range(n))
        assert total == int(n * ratio) or abs(total - n * ratio) < 2
        assert acc.total_ticks == total

    def test_ticks_never_negative_or_bursty(self):
        acc = RateAccumulator(1.84)
        for _ in range(1000):
            t = acc.advance()
            assert t in (1, 2)

    def test_slow_domain(self):
        acc = RateAccumulator(0.5)
        assert [acc.advance() for _ in range(4)] == [0, 1, 0, 1]
