"""Cycle-level virtual-channel wormhole router.

Models the paper's baseline router (Table III): input-queued, virtual-channel
flow control with credit-based backpressure, a configurable pipeline depth
(4 stages baseline, 3 for half-routers, 1 for the "aggressive router" study
of Section III-C), iSLIP-style separable switch allocation, input speedup 1.

The pipeline is modelled by a per-flit ready time: a flit entering an input
buffer at cycle ``t`` may not traverse the switch before
``t + pipeline_latency - 1``, so an uncontended hop costs
``pipeline_latency + channel_latency`` cycles (5 for the baseline, matching
Section III-B's "5-cycle per hop delay").

Half-routers (Section IV-A, Figure 13) restrict connectivity: packets may
not change dimension — East connects only to West (and vice versa), North
only to South — while injection and ejection ports connect to everything.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Tuple

from .arbiter import RoundRobinArbiter, SeparableAllocator
from .packet import Flit, Packet, RouteGroup
from .routing import RoutingAlgorithm
from .topology import Coord, Direction, PortId, ejection_port, injection_port
from .vc import VcConfig

MESH_DIRECTIONS = (Direction.NORTH, Direction.SOUTH,
                   Direction.EAST, Direction.WEST)

#: Sentinel wake time for a router with nothing scheduled ("sleep forever").
NEVER = 1 << 62


class RoutingViolation(RuntimeError):
    """Raised when a route would require an illegal turn, e.g. a dimension
    change inside a half-router."""


@dataclass
class RouterSpec:
    """Static description of one router used by network assembly."""

    coord: Coord
    half: bool = False
    pipeline_latency: int = 4
    num_inject_ports: int = 1
    num_eject_ports: int = 1


class _InputVc:
    """State of one input virtual channel."""

    __slots__ = ("buffer", "out_port", "out_vc", "out_pos")

    def __init__(self) -> None:
        self.buffer: Deque[Flit] = deque()
        self.out_port: Optional[PortId] = None   # route computation result
        self.out_vc: Optional[int] = None        # VC allocation result
        #: Position of ``out_port`` in the router's output order, cached by
        #: ``_vc_allocate`` so the switch stage indexes a tuple instead of
        #: hashing a port id every cycle.  Only meaningful while ``out_vc``
        #: is set.
        self.out_pos: int = 0

    def reset_route(self) -> None:
        self.out_port = None
        self.out_vc = None


class _OutputPort:
    """Credit and ownership state for one output port."""

    __slots__ = ("port_id", "credits", "owner", "channel", "sink",
                 "vc_pointers")

    def __init__(self, port_id: PortId, num_vcs: int, buffer_depth: int,
                 channel=None, sink=None) -> None:
        self.port_id = port_id
        self.channel = channel          # mesh channel toward the next router
        self.sink = sink                # terminal ejection sink
        if sink is not None:
            # Terminal ejection: the node always drains, credits unbounded.
            self.credits = [1 << 30] * num_vcs
        else:
            self.credits = [buffer_depth] * num_vcs
        self.owner: List[Optional[Tuple[PortId, int]]] = [None] * num_vcs
        #: One rotation pointer per distinct ``allowed`` set.  A single
        #: shared pointer reused modulo ``len(allowed)`` across different
        #: sets (request vs reply classes, XY vs YX route splits) biases
        #: the rotation and couples the classes to each other.
        self.vc_pointers: Dict[Tuple[int, ...], int] = {}

    def free_vc(self, allowed: Tuple[int, ...]) -> Optional[int]:
        """Pick a free VC among ``allowed``, rotating for fairness."""
        n = len(allowed)
        if n == 1:
            # Single-VC class (the paper's baseline): the rotation pointer
            # is identically 0 mod 1, so the dict bookkeeping is dead.
            vc = allowed[0]
            return vc if self.owner[vc] is None else None
        pointer = self.vc_pointers.get(allowed, 0)
        for offset in range(n):
            vc = allowed[(pointer + offset) % n]
            if self.owner[vc] is None:
                self.vc_pointers[allowed] = (pointer + offset + 1) % n
                return vc
        return None


def full_connectivity(in_port: PortId, out_port: PortId) -> bool:
    """Legal turns of a conventional 5-port mesh router (no U-turns)."""
    if isinstance(in_port, tuple):          # injection port: to anywhere
        return not (isinstance(out_port, tuple) and out_port[0] == "inj")
    if isinstance(out_port, tuple):
        return out_port[0] == "ej"
    # Input ports are named for the side a flit enters on, so a U-turn is
    # out_port == in_port (back toward the neighbor it came from).
    return out_port != in_port


def half_connectivity(in_port: PortId, out_port: PortId) -> bool:
    """Legal connections of a half-router (Figure 13): straight-through on
    each dimension plus full injection/ejection connectivity."""
    if isinstance(in_port, tuple):
        return not (isinstance(out_port, tuple) and out_port[0] == "inj")
    if isinstance(out_port, tuple):
        return out_port[0] == "ej"
    return out_port == in_port.opposite()


class Router:
    """One mesh router instance."""

    def __init__(self, spec: RouterSpec, vc_config: VcConfig,
                 buffer_depth: int, routing: RoutingAlgorithm) -> None:
        # Note: the credit-return delay is owned by the *channel*
        # (``NocParams.credit_delay`` -> ``Channel``); the router has no
        # say in it, so it deliberately takes no such parameter.
        self.coord = spec.coord
        self.spec = spec
        self.vc_config = vc_config
        self.num_vcs = vc_config.num_vcs
        self.buffer_depth = buffer_depth
        self.routing = routing
        self.pipeline_latency = spec.pipeline_latency
        self.connectivity: Callable[[PortId, PortId], bool] = (
            half_connectivity if spec.half else full_connectivity)

        self.in_ports: Dict[PortId, List[_InputVc]] = {}
        self.out_ports: Dict[PortId, _OutputPort] = {}
        #: Mesh channel feeding each mesh input port (for credit returns).
        self.in_channels: Dict[PortId, object] = {}
        for k in range(spec.num_inject_ports):
            self._add_input(injection_port(k))
        self._eject_ids = tuple(ejection_port(k)
                                for k in range(spec.num_eject_ports))
        self._eject_pointer = 0
        self._allocator: Optional[SeparableAllocator] = None
        self._input_order: Tuple[PortId, ...] = ()
        self._ordered_inputs: Tuple[Tuple[PortId, List[_InputVc]], ...] = ()
        self._va_rotate = 0
        #: Flits currently buffered; routers with zero occupancy are skipped.
        self.occupancy = 0
        #: Opt-in per-hop packet tracer (``repro.telemetry``); ``None``
        #: keeps each event site at a single attribute test.
        self.tracer = None

        # -- event-driven scheduling state (see DESIGN.md §13) ---------------
        #: Currently scheduled wake cycle (``NEVER`` = not scheduled).  Owned
        #: by the network's wake heap; the router only reads/clears it.
        self.wake = NEVER
        #: Position of this router in the network's router list.
        self.net_index = 0
        #: Cycle of the last route/VC-allocation pass.  The scan stepper
        #: advances ``_va_rotate`` once per occupied cycle; the event stepper
        #: replays the increments of skipped cycles from this anchor so the
        #: rotation stays bit-identical.
        self._last_step = -1
        #: Per input-port position, bitmask of VCs with a non-empty buffer.
        self._vc_masks: List[int] = []
        self._in_pos: Dict[PortId, int] = {}
        #: Wake decision computed by the last ``step`` (see ``next_wake``):
        #: ``cycle + 1`` when local state can still change on its own (an
        #: arbitration loser retrying, a newly exposed eligible head), the
        #: earliest future pipeline ``ready`` otherwise, ``NEVER`` when only
        #: an external credit/flit event can unblock the router.  Folded
        #: into the step scan so ``next_wake`` never re-walks the buffers.
        self._wake_hint = NEVER
        #: Routers with several ejection ports must re-arm every occupied
        #: cycle: a *failed* ejection VC allocation still rotates the
        #: eject-port pointer, so sleeping would diverge from the scan.
        self._multi_eject = len(self._eject_ids) > 1
        #: Batched struct-of-arrays core (``repro.noc.batched``) this
        #: router mirrors its actionable-cell state into; ``None`` keeps
        #: the delivery paths at a single attribute test.
        self._soa = None
        #: First cell index of this router in the SoA pools.
        self._soa_base = 0

    # -- assembly ----------------------------------------------------------

    def _add_input(self, port_id: PortId) -> None:
        self.in_ports[port_id] = [_InputVc() for _ in range(self.num_vcs)]

    def attach_input_channel(self, direction: Direction, channel) -> None:
        """Attach an incoming mesh channel (flits arrive from a neighbor)."""
        self._add_input(direction)
        self.in_channels[direction] = channel

    def attach_output_channel(self, direction: Direction, channel) -> None:
        self.out_ports[direction] = _OutputPort(
            direction, self.num_vcs, self.buffer_depth, channel=channel)

    def attach_ejection(self, sink) -> None:
        for port_id in self._eject_ids:
            self.out_ports[port_id] = _OutputPort(
                port_id, self.num_vcs, self.buffer_depth, sink=sink)

    def finalize(self) -> None:
        """Build the switch allocator once all ports are attached."""
        self._input_order = tuple(sorted(self.in_ports, key=str))
        # The allocation loops walk the inputs every cycle; resolve the
        # port -> VC-list mapping once instead of per cycle.
        self._ordered_inputs = tuple(
            (port, self.in_ports[port]) for port in self._input_order)
        self._output_order = tuple(sorted(self.out_ports, key=str))
        self._allocator = SeparableAllocator(
            self._input_order, self.num_vcs, self._output_order)
        # Position-indexed views and reused per-cycle scratch for the
        # allocation fast path (``step`` rebuilds no dicts per cycle).
        n_in = len(self._input_order)
        self._in_pos = {port: i for i, port in enumerate(self._input_order)}
        self._vc_masks = [0] * n_in
        self._out_pos = {port: i
                         for i, port in enumerate(self._output_order)}
        self._out_by_pos = tuple(self.out_ports[p]
                                 for p in self._output_order)
        self._in_channel_by_pos = tuple(self.in_channels.get(p)
                                        for p in self._input_order)
        self._req_masks: List[int] = [0] * n_in
        self._req_outs: List[List[int]] = [
            [0] * self.num_vcs for _ in range(n_in)]
        self._req_active: List[int] = []
        self._grant_scratch: List[Tuple[int, int, int]] = []

    # -- runtime -----------------------------------------------------------

    def deliver_flit(self, port: PortId, vc: int, flit: Flit,
                     cycle: int) -> None:
        """A flit arrives from a channel (or from the injection source).

        Twin of :meth:`deliver_channel_flit` (which skips the port-to-
        position lookup and the terminal-port branches); any semantic
        change must land in both bodies.
        """
        pos = self._in_pos[port]
        terminal = type(port) is tuple
        state = self._ordered_inputs[pos][1][vc]
        if not terminal and len(state.buffer) >= self.buffer_depth:
            raise RuntimeError(
                f"buffer overflow at {self.coord} port {port} vc {vc}: "
                "credit accounting violated")
        if self.occupancy == 0:
            # Empty -> occupied transition: re-anchor the VA rotation clock
            # at the cycle the scan stepper would first step this router —
            # this same cycle for a channel delivery (channel phase precedes
            # the router phase), the next cycle for a source-drain injection
            # (the source phase follows it).
            self._last_step = cycle if terminal else cycle - 1
        # Uncontended per-hop latency = pipeline_latency + channel latency
        # (5 cycles for the 4-stage baseline, Section III-B).
        flit.ready = cycle + self.pipeline_latency
        state.buffer.append(flit)
        self.occupancy += 1
        self._vc_masks[pos] |= 1 << vc
        soa = self._soa
        if soa is not None and len(state.buffer) == 1:
            # The flit became the cell's front: mirror its pipeline ready
            # time (and, for a fresh head, the VA obligation) into the
            # batched core's screen arrays.
            ci = self._soa_base + pos * self.num_vcs + vc
            soa.head_ready[ci] = flit.ready
            if state.out_vc is None:
                soa.va_need[ci] = True
        tracer = self.tracer
        if tracer is not None and flit.is_head:
            tracer.on_hop_arrive(flit.packet, self.coord, port, cycle)

    def deliver_channel_flit(self, pos: int, port: PortId, vc: int,
                             flit: Flit, cycle: int) -> None:
        """Channel-phase twin of :meth:`deliver_flit` with the input
        position pre-resolved (channels cache it after the first hop) and
        the terminal-port branches resolved statically — mesh channels
        never end on a terminal port."""
        state = self._ordered_inputs[pos][1][vc]
        if len(state.buffer) >= self.buffer_depth:
            raise RuntimeError(
                f"buffer overflow at {self.coord} port {port} vc {vc}: "
                "credit accounting violated")
        if self.occupancy == 0:
            self._last_step = cycle - 1
        flit.ready = cycle + self.pipeline_latency
        state.buffer.append(flit)
        self.occupancy += 1
        self._vc_masks[pos] |= 1 << vc
        soa = self._soa
        if soa is not None and len(state.buffer) == 1:
            ci = self._soa_base + pos * self.num_vcs + vc
            soa.head_ready[ci] = flit.ready
            if state.out_vc is None:
                soa.va_need[ci] = True
        tracer = self.tracer
        if tracer is not None and flit.is_head:
            tracer.on_hop_arrive(flit.packet, self.coord, port, cycle)

    def deliver_credit(self, port: PortId, vc: int) -> None:
        self.deliver_credit_port(self.out_ports[port], vc)

    def deliver_credit_port(self, out, vc: int) -> None:
        """Credit return with the output port pre-resolved (channels cache
        their upstream endpoint after the first delivery)."""
        credits = out.credits[vc] + 1
        out.credits[vc] = credits
        soa = self._soa
        if soa is not None and credits == 1:
            # 0 -> 1 transition: the owning input cell (if any) becomes a
            # switch request again; flag it for the batched screen.
            owner = out.owner[vc]
            if owner is not None:
                soa.va_ok[self._soa_base
                          + self._in_pos[owner[0]] * self.num_vcs
                          + owner[1]] = True

    def injection_space(self, port: PortId, vc: int) -> int:
        return self.buffer_depth - len(self.in_ports[port][vc].buffer)

    def step(self, cycle: int) -> List[Tuple[Flit, PortId]]:
        """Advance one cycle: route computation, VC allocation, switch
        allocation and traversal.  Returns ejected (flit, port) pairs.

        This is the event-driven fast path; ``step_reference`` is the
        exhaustive-scan twin it must stay bit-identical to.  It fuses the
        reference's two scans (route/VC-allocate, then switch-request
        collection) into one pass over the non-empty-VC bitmasks: a VC's
        switch request depends only on its own route state plus output
        credits, and neither is touched by another VC's allocation, so the
        collected request set matches the two-pass reference exactly.  The
        allocator's ``active`` list is rebuilt in input-position order
        afterwards because grant ordering (and therefore traversal and
        ejection order) is part of the determinism contract.
        """
        if self.occupancy == 0:
            return []
        inputs = self._ordered_inputs
        masks = self._vc_masks
        out_by_pos = self._out_by_pos
        out_pos_map = self._out_pos
        req_masks = self._req_masks
        req_outs = self._req_outs
        allowed_vcs = self.vc_config.allowed_vcs
        eject = Direction.EJECT
        tracer = self.tracer
        n = len(inputs)
        # Replay the per-cycle rotation increments of the skipped cycles so
        # the VC-allocation rotation stays bit-identical to the scan.
        rotate = (self._va_rotate + cycle - self._last_step - 1) % n
        self._va_rotate = (rotate + 1) % n
        self._last_step = cycle
        eligible = 0
        min_future = NEVER
        post_eligible = False
        for pos in range(n):
            req_masks[pos] = 0
        for i in range(n):
            pos = (i + rotate) % n
            m = masks[pos]
            if not m:
                continue
            in_port, in_vcs = inputs[pos]
            rmask = 0
            outs = req_outs[pos]
            while m:
                low = m & -m
                m -= low
                in_vc = low.bit_length() - 1
                vc_state = in_vcs[in_vc]
                head = vc_state.buffer[0]
                if head.is_head:
                    if head.ready > cycle:
                        if head.ready < min_future:
                            min_future = head.ready
                        continue
                    eligible += 1
                    out_port = vc_state.out_port
                    if out_port is None:
                        packet = head.packet
                        direction = self.routing.next_port(self.coord,
                                                           packet)
                        if direction is eject:
                            out_port = vc_state.out_port = eject
                        else:
                            if not self.connectivity(in_port, direction):
                                raise RoutingViolation(
                                    f"illegal turn at {self.coord} "
                                    f"({'half' if self.spec.half else 'full'}"
                                    f"): {in_port} -> {direction} for packet "
                                    f"{packet.src}->{packet.dest} "
                                    f"group={packet.group}")
                            out_port = vc_state.out_port = direction
                            vc_state.out_pos = out_pos_map[direction]
                    if vc_state.out_vc is None:
                        # Inlined single-candidate VC allocation (the common
                        # case; ejection keeps the multi-candidate helper).
                        # Must mirror ``_vc_allocate`` exactly.
                        if out_port is eject:
                            self._vc_allocate(in_port, in_vc, vc_state,
                                              head.packet, cycle)
                            if vc_state.out_vc is None:
                                continue
                        else:
                            packet = head.packet
                            out = out_by_pos[vc_state.out_pos]
                            vc = out.free_vc(allowed_vcs(
                                packet.traffic_class, packet.group))
                            if vc is None:
                                continue
                            out.owner[vc] = (in_port, in_vc)
                            vc_state.out_vc = vc
                            if tracer is not None:
                                tracer.on_vc_alloc(packet, self.coord,
                                                   out_port, vc, cycle)
                else:
                    if vc_state.out_port is None:
                        raise RuntimeError(
                            f"body flit at head of VC without route at "
                            f"{self.coord}: {head!r}")
                    if head.ready > cycle:
                        if head.ready < min_future:
                            min_future = head.ready
                        continue
                    eligible += 1
                opos = vc_state.out_pos
                if out_by_pos[opos].credits[vc_state.out_vc] <= 0:
                    continue
                rmask |= low
                outs[in_vc] = opos
            if rmask:
                req_masks[pos] = rmask

        active = self._req_active
        for pos in range(n):
            if req_masks[pos]:
                active.append(pos)
        ejected: List[Tuple[Flit, PortId]] = []
        if not active:
            # No switch requests: zero grants.  Blocked-but-eligible heads
            # only unblock via an external credit/flit event (which re-wakes
            # the router through the network), so sleep to the earliest
            # pipeline ready — unless a failed multi-eject allocation moved
            # the eject pointer, which forces a re-arm.
            self._wake_hint = (cycle + 1 if eligible and self._multi_eject
                               else min_future)
            return ejected
        grants = self._grant_scratch
        self._allocator.allocate_fast(active, req_masks, req_outs, grants)
        in_channels = self._in_channel_by_pos
        for pos, vc_idx, o in grants:
            vc_state = inputs[pos][1][vc_idx]
            flit = vc_state.buffer.popleft()
            if not vc_state.buffer:
                masks[pos] &= ~(1 << vc_idx)
            else:
                # The newly exposed flit is the only head the request scan
                # did not see; fold it into the wake decision.
                nr = vc_state.buffer[0].ready
                if nr <= cycle:
                    post_eligible = True
                elif nr < min_future:
                    min_future = nr
            self.occupancy -= 1
            out = out_by_pos[o]
            out_vc = vc_state.out_vc
            out.credits[out_vc] -= 1
            if tracer is not None and flit.is_head:
                tracer.on_switch(flit.packet, self.coord, out.port_id, cycle)
            if out.sink is not None:
                ejected.append((flit, out.port_id))
            else:
                out.channel.send_flit(flit, out_vc, cycle)
            # Return a credit upstream for the freed buffer slot.
            channel = in_channels[pos]
            if channel is not None:
                channel.send_credit(vc_idx, cycle)
            if flit.is_tail:
                out.owner[out_vc] = None
                vc_state.reset_route()
        if eligible > len(grants):
            # Arbitration losers (or credit-blocked heads behind a cycle
            # that moved something) can progress next cycle.
            self._wake_hint = (cycle + 1 if grants or self._multi_eject
                               else min_future)
        elif post_eligible:
            self._wake_hint = cycle + 1
        else:
            self._wake_hint = min_future
        del active[:]
        del grants[:]
        return ejected

    def step_reference(self, cycle: int) -> List[Tuple[Flit, PortId]]:
        """Reference exhaustive-scan step (the pre-event-core behaviour).

        Twin of ``step``: any semantic change must land in both, and the
        golden bit-identity tests in tests/test_event_core.py compare them.
        """
        if self.occupancy == 0:
            return []
        self._route_and_allocate_reference(cycle)
        return self._switch_reference(cycle)

    def next_wake(self, cycle: int) -> int:
        """Earliest future cycle this router needs to be stepped again.

        Called immediately after ``step(cycle)`` (nothing mutates router
        state in between, so the hint the step computed is current).  A head
        flit that was eligible (``ready <= cycle``) but is still buffered
        after a granting cycle lost arbitration and can win the next one, so
        the router re-arms like the scan; with zero grants nothing local can
        change until a credit or flit arrives (both re-wake the router
        through the network), so it sleeps to the earliest pipeline
        ``ready`` — stepping sooner would only advance ``_va_rotate``, which
        the next ``step`` replays anyway.  The decision is folded into the
        step's buffer scan (``_wake_hint``), keeping this call O(1).
        """
        if self.occupancy == 0:
            return NEVER
        return self._wake_hint

    # Twin of ``step``'s fused route/VA scan: full port x VC walk, plain
    # per-call rotation (the scan stepper calls this every occupied cycle).
    def _route_and_allocate_reference(self, cycle: int) -> None:
        inputs = self._ordered_inputs
        n = len(inputs)
        rotate = self._va_rotate
        self._va_rotate = (rotate + 1) % max(1, n)
        self._last_step = cycle
        for i in range(n):
            in_port, in_vcs = inputs[(i + rotate) % n]
            for in_vc, vc_state in enumerate(in_vcs):
                buf = vc_state.buffer
                if not buf:
                    continue
                head = buf[0]
                if not head.is_head:
                    if vc_state.out_port is None:
                        raise RuntimeError(
                            f"body flit at head of VC without route at "
                            f"{self.coord}: {head!r}")
                    continue
                if head.ready > cycle:
                    continue
                packet = head.packet
                if vc_state.out_port is None:
                    direction = self.routing.next_port(self.coord, packet)
                    if direction is Direction.EJECT:
                        vc_state.out_port = Direction.EJECT
                    else:
                        if not self.connectivity(in_port, direction):
                            raise RoutingViolation(
                                f"illegal turn at {self.coord} "
                                f"({'half' if self.spec.half else 'full'}): "
                                f"{in_port} -> {direction} for packet "
                                f"{packet.src}->{packet.dest} "
                                f"group={packet.group}")
                        vc_state.out_port = direction
                if vc_state.out_vc is None:
                    self._vc_allocate(in_port, in_vc, vc_state, packet,
                                      cycle)

    def _vc_allocate(self, in_port: PortId, in_vc: int, vc_state: _InputVc,
                     packet: Packet, cycle: int) -> None:
        allowed = self.vc_config.allowed_vcs(packet.traffic_class,
                                             packet.group)
        if vc_state.out_port is Direction.EJECT:
            candidates = self._eject_candidates()
        else:
            candidates = (vc_state.out_port,)
        for port_id in candidates:
            out = self.out_ports[port_id]
            vc = out.free_vc(allowed)
            if vc is not None:
                out.owner[vc] = (in_port, in_vc)
                vc_state.out_vc = vc
                vc_state.out_port = port_id
                vc_state.out_pos = self._out_pos[port_id]
                tracer = self.tracer
                if tracer is not None:
                    tracer.on_vc_alloc(packet, self.coord, port_id, vc,
                                       cycle)
                return

    def _eject_candidates(self) -> Tuple[PortId, ...]:
        ids = self._eject_ids
        if len(ids) == 1:
            return ids
        p = self._eject_pointer
        self._eject_pointer = (p + 1) % len(ids)
        return ids[p:] + ids[:p]

    # Twin of ``step``'s switch stage: dict-keyed requests via ``allocate``.
    def _switch_reference(self, cycle: int) -> List[Tuple[Flit, PortId]]:
        requests: Dict[PortId, Dict[int, PortId]] = {}
        for in_port, in_vcs in self._ordered_inputs:
            vc_requests: Dict[int, PortId] = {}
            for vc_idx, vc_state in enumerate(in_vcs):
                if vc_state.out_vc is None or not vc_state.buffer:
                    continue
                flit = vc_state.buffer[0]
                if flit.ready > cycle:
                    continue
                out = self.out_ports[vc_state.out_port]
                if out.credits[vc_state.out_vc] <= 0:
                    continue
                vc_requests[vc_idx] = vc_state.out_port
            if vc_requests:
                requests[in_port] = vc_requests

        ejected: List[Tuple[Flit, PortId]] = []
        if not requests:
            return ejected
        tracer = self.tracer
        for in_port, vc_idx, out_port_id in self._allocator.allocate(requests):
            vc_state = self.in_ports[in_port][vc_idx]
            flit = vc_state.buffer.popleft()
            if not vc_state.buffer:
                self._vc_masks[self._in_pos[in_port]] &= ~(1 << vc_idx)
            self.occupancy -= 1
            out = self.out_ports[out_port_id]
            out_vc = vc_state.out_vc
            out.credits[out_vc] -= 1
            if tracer is not None and flit.is_head:
                tracer.on_switch(flit.packet, self.coord, out_port_id, cycle)
            if out.sink is not None:
                ejected.append((flit, out_port_id))
            else:
                out.channel.send_flit(flit, out_vc, cycle)
            # Return a credit upstream for the freed buffer slot.
            channel = self.in_channels.get(in_port)
            if channel is not None:
                channel.send_credit(vc_idx, cycle)
            if flit.is_tail:
                out.owner[out_vc] = None
                vc_state.reset_route()
        return ejected
