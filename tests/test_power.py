"""Power-model calibration goldens and report contracts.

The same discipline as ``tests/test_area.py``: every anchor constant is
pinned *exactly* (they are calibration inputs, not predictions); every
other configuration is a prediction of the documented functional form,
checked against the form within tolerance.  On top of that,
:class:`PowerReport` has contracts the DSE and serve layers lean on:
JSON round-trip equality, node-independence of the underlying activity,
and monotonically improving IPC/W across the technology sweep.
"""

import pytest

from repro.area.chip import design_noc_area
from repro.area.orion import crossbar_units
from repro.core.builder import BASELINE, THROUGHPUT_EFFECTIVE
from repro.power import (DEFAULT_NODES, E_ALLOCATOR_ANCHOR_PJ,
                         E_BUFFER_READ_ANCHOR_PJ, E_BUFFER_WRITE_ANCHOR_PJ,
                         E_CROSSBAR_ANCHOR_PJ, E_LINK_ANCHOR_PJ, F65_GHZ,
                         LEAKAGE_MW_PER_MM2, TECH_NODES, ActivityCounts,
                         PowerReport, allocator_energy_pj, buffer_energy_pj,
                         crossbar_energy_pj, design_power, leakage_w,
                         link_energy_pj, node_sweep, power_report,
                         router_energy, tech_node)
from repro.system.accelerator import build_chip
from repro.workloads.profiles import profile

#: A deterministic synthetic window (no simulation needed): a saturated
#: 6x6 mesh over 1000 interconnect cycles.
ACTIVITY = ActivityCounts(cycles=1000, crossbar_traversals=20000,
                          buffer_reads=20000, buffer_writes=20400,
                          link_flit_hops=16000, flits_ejected=4000)


class TestAnchorsExact:
    """The calibration constants are inputs — pinned bit-exactly."""

    def test_crossbar_anchor(self):
        assert crossbar_energy_pj(16) == E_CROSSBAR_ANCHOR_PJ == 1.2

    def test_buffer_anchors(self):
        assert buffer_energy_pj(16, 2, 8, write=True) \
            == E_BUFFER_WRITE_ANCHOR_PJ == 0.62
        assert buffer_energy_pj(16, 2, 8, write=False) \
            == E_BUFFER_READ_ANCHOR_PJ == 0.48

    def test_allocator_anchor(self):
        assert allocator_energy_pj(2) == E_ALLOCATOR_ANCHOR_PJ == 0.024

    def test_link_anchor(self):
        assert link_energy_pj(16) == E_LINK_ANCHOR_PJ == 1.75

    def test_leakage_anchor(self):
        assert LEAKAGE_MW_PER_MM2 == 2.5
        assert leakage_w(1.0) == pytest.approx(2.5e-3)

    def test_65nm_row_is_identity(self):
        node = tech_node(65)
        assert node.vdd == 1.1
        assert node.freq_scale == node.cap_scale == 1.0
        assert node.leak_scale == node.area_scale == 1.0
        assert node.dynamic_scale == 1.0
        assert node.leakage_area_scale == 1.0
        assert node.frequency_ghz == F65_GHZ == 0.602


class TestPredictionsFollowTheForms:
    """Non-anchor configurations are predictions of the documented
    functional forms — checked against the form, with tolerance."""

    def test_crossbar_quadratic_in_width(self):
        assert crossbar_energy_pj(32) \
            == pytest.approx(4 * E_CROSSBAR_ANCHOR_PJ)
        assert crossbar_energy_pj(8) \
            == pytest.approx(E_CROSSBAR_ANCHOR_PJ / 4)

    def test_crossbar_prices_datapath_units(self):
        # Half routers and multi-port MC routers reuse the area model's
        # cell count, so their energies sit in exact unit ratios.
        full = crossbar_energy_pj(16)
        assert crossbar_energy_pj(16, half=True) \
            == pytest.approx(full * crossbar_units(True, 1, 1) / 25)
        assert crossbar_energy_pj(16, inject_ports=2) \
            == pytest.approx(full * crossbar_units(False, 2, 1) / 25)

    def test_buffer_linear_in_vcs_depth_width(self):
        base = buffer_energy_pj(16, 2, 8, write=True)
        assert buffer_energy_pj(16, 4, 8, write=True) \
            == pytest.approx(2 * base)
        assert buffer_energy_pj(16, 2, 4, write=True) \
            == pytest.approx(base / 2)
        assert buffer_energy_pj(32, 2, 8, write=True) \
            == pytest.approx(2 * base)

    def test_allocator_quadratic_in_vcs(self):
        assert allocator_energy_pj(4) \
            == pytest.approx(4 * E_ALLOCATOR_ANCHOR_PJ)

    def test_link_linear_in_width(self):
        assert link_energy_pj(32) == pytest.approx(2 * E_LINK_ANCHOR_PJ)

    def test_router_energy_traversal_sums_components(self):
        r = router_energy(16, 2)
        assert r.traversal_pj == pytest.approx(
            r.crossbar_pj + r.buffer_write_pj + r.buffer_read_pj
            + r.allocator_pj)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            crossbar_energy_pj(0)
        with pytest.raises(ValueError):
            buffer_energy_pj(16, 0)
        with pytest.raises(ValueError):
            allocator_energy_pj(0)
        with pytest.raises(ValueError):
            link_energy_pj(-1)
        with pytest.raises(ValueError):
            leakage_w(-0.1)

    def test_tech_scaling_forms(self):
        node = tech_node(45)
        assert node.dynamic_scale \
            == pytest.approx((45 / 65) * (1.0 / 1.1) ** 2)
        assert node.leakage_area_scale \
            == pytest.approx((45 / 65) ** 2 * 1.6)
        assert tech_node(22).frequency_ghz \
            == pytest.approx(F65_GHZ * 1.953125)
        # Dynamic energy per event shrinks monotonically down the table
        # while frequency rises.
        dyn = [TECH_NODES[nm].dynamic_scale for nm in DEFAULT_NODES]
        freq = [TECH_NODES[nm].frequency_ghz for nm in DEFAULT_NODES]
        assert dyn == sorted(dyn, reverse=True)
        assert freq == sorted(freq)

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError, match="unknown technology node"):
            tech_node(28)


class TestDesignPower:
    def test_leakage_matches_area_model_exactly(self):
        report = design_power(THROUGHPUT_EFFECTIVE, ACTIVITY)
        area = design_noc_area(THROUGHPUT_EFFECTIVE, compute_area=0.0)
        assert report.leak_routers_w \
            == pytest.approx(leakage_w(area.router_sum))
        assert report.leak_links_w \
            == pytest.approx(leakage_w(area.link_sum))

    def test_energy_per_flit_back_converts_total(self):
        report = design_power(BASELINE, ACTIVITY)
        hz = report.frequency_ghz * 1e9
        window_pj = report.total_w / hz * ACTIVITY.cycles * 1e12
        assert report.energy_per_flit_pj \
            == pytest.approx(window_pj / ACTIVITY.flits_ejected)

    def test_zero_cycles_is_all_leakage(self):
        idle = ActivityCounts(cycles=0, crossbar_traversals=0,
                              buffer_reads=0, buffer_writes=0,
                              link_flit_hops=0)
        report = design_power(BASELINE, idle)
        assert report.dynamic_w == 0.0
        assert report.total_w == pytest.approx(report.leakage_w)

    def test_node_sweep_improves_ipc_per_watt_monotonically(self):
        reports = node_sweep(THROUGHPUT_EFFECTIVE, ACTIVITY,
                             DEFAULT_NODES, ipc=150.0)
        assert list(reports) == list(DEFAULT_NODES)
        ipw = [reports[nm].ipc_per_watt for nm in DEFAULT_NODES]
        assert all(v is not None for v in ipw)
        assert ipw == sorted(ipw)
        # the activity being priced is node-independent
        assert len({reports[nm].cycles for nm in DEFAULT_NODES}) == 1

    def test_json_round_trip_exact(self):
        report = design_power(THROUGHPUT_EFFECTIVE, ACTIVITY, node=32,
                              ipc=123.4)
        clone = PowerReport.from_json(report.to_json())
        assert clone == report
        assert clone.to_json() == report.to_json()

    def test_report_prices_a_real_simulation(self):
        result = build_chip(profile("RD"), design=THROUGHPUT_EFFECTIVE,
                            seed=11).run(warmup=100, measure=200)
        report = power_report(THROUGHPUT_EFFECTIVE, result)
        assert report.cycles == result.icnt_cycles
        assert report.dynamic_w > 0
        assert report.ipc_per_watt \
            == pytest.approx(result.ipc / report.total_w)
        # ... and equals pricing the extracted counts directly
        direct = design_power(THROUGHPUT_EFFECTIVE,
                              ActivityCounts.from_result(result),
                              ipc=result.ipc)
        assert direct == report

    def test_activity_falls_back_to_whole_run_cycles(self):
        class Point:          # LoadLatencyPoint-shaped (no icnt_cycles)
            cycles = 300
            crossbar_traversals = 10
            buffer_reads = 10
            buffer_writes = 12
            link_flit_hops = 8
            flits_ejected = 2

        counts = ActivityCounts.from_result(Point())
        assert counts.cycles == 300
        assert counts.flits_ejected == 2
