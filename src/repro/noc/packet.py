"""Packets and flits.

Traffic in the accelerator is many-to-few-to-many (Figure 1): compute cores
send small read requests (8 B) and less frequent large write requests (64 B)
to memory controllers, which answer with large read replies (64 B).  A packet
is segmented into flits based on the channel width of the network carrying it
(Section V, Table III: 16 B flits in the baseline).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import List, Optional

from .topology import Coord

#: Packet payload sizes in bytes (Section III-D).
READ_REQUEST_BYTES = 8
WRITE_REQUEST_BYTES = 64
READ_REPLY_BYTES = 64


class TrafficClass(IntEnum):
    """Protocol classes.  Separate (virtual or physical) networks carry the
    two classes to avoid protocol (request-reply) deadlock."""

    REQUEST = 0
    REPLY = 1


class RouteGroup(Enum):
    """Which dimension-order a packet follows; selects the routing VC.

    ``ANY`` is used by plain DOR configurations where every VC of the
    protocol class is equivalent.  Checkerboard routing (Section IV-B)
    dedicates one VC to XY-routed and one to YX-routed packets, like O1Turn.
    """

    ANY = "any"
    XY = "xy"
    YX = "yx"


_packet_ids = itertools.count()


@dataclass(slots=True)
class Packet:
    """A message travelling through one network.

    The routing plan (``group``, ``intermediate``) is attached at injection
    time by the routing algorithm.  ``phase`` tracks progress of two-phase
    checkerboard routes: 0 while heading to the intermediate full-router,
    1 afterwards.
    """

    src: Coord
    dest: Coord
    size_bytes: int
    traffic_class: TrafficClass
    created: int = 0
    pid: int = field(default_factory=lambda: next(_packet_ids))

    # Routing state
    group: RouteGroup = RouteGroup.ANY
    intermediate: Optional[Coord] = None
    phase: int = 1

    # Opaque payload for closed-loop simulation (e.g. the memory request).
    payload: object = None

    # Timestamps filled in by the network.
    injected: int = -1
    ejected: int = -1

    #: ``num_flits`` memo for the last queried channel width — the
    #: injection path asks twice per packet (capacity check, then
    #: ``make_flits``) with the same width.  The sentinel is negative so
    #: an (invalid) width of 0 can never hit the memo unvalidated.
    _nf_width: int = field(default=-1, init=False, repr=False, compare=False)
    _nf: int = field(default=0, init=False, repr=False, compare=False)

    def num_flits(self, channel_width: int) -> int:
        if channel_width == self._nf_width:
            return self._nf
        if channel_width <= 0:
            raise ValueError("channel width must be positive")
        n = max(1, -(-self.size_bytes // channel_width))
        self._nf_width = channel_width
        self._nf = n
        return n

    def make_flits(self, channel_width: int) -> List["Flit"]:
        n = self.num_flits(channel_width)
        return [
            Flit(packet=self, index=i, is_head=(i == 0), is_tail=(i == n - 1))
            for i in range(n)
        ]

    @property
    def latency(self) -> int:
        """Total latency: creation to tail ejection."""
        if self.ejected < 0:
            raise ValueError("packet not yet ejected")
        return self.ejected - self.created

    @property
    def network_latency(self) -> int:
        """Injection (first flit enters the router) to tail ejection."""
        if self.ejected < 0 or self.injected < 0:
            raise ValueError("packet not yet through the network")
        return self.ejected - self.injected


@dataclass(slots=True)
class Flit:
    """One channel-width unit of a packet (wormhole flow control)."""

    packet: Packet
    index: int
    is_head: bool
    is_tail: bool
    #: Earliest cycle this flit may leave the current router (models the
    #: router pipeline depth; set on buffer insertion).
    ready: int = 0

    @property
    def dest(self) -> Coord:
        return self.packet.dest

    def __repr__(self) -> str:
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit(p{self.packet.pid}[{self.index}]{kind}->{self.dest})"


def read_request(src: Coord, dest: Coord, created: int = 0,
                 payload: object = None) -> Packet:
    """An 8-byte read-request packet (core -> MC)."""
    return Packet(src, dest, READ_REQUEST_BYTES, TrafficClass.REQUEST,
                  created=created, payload=payload)


def write_request(src: Coord, dest: Coord, created: int = 0,
                  payload: object = None) -> Packet:
    """A 64-byte write-request packet (core -> MC)."""
    return Packet(src, dest, WRITE_REQUEST_BYTES, TrafficClass.REQUEST,
                  created=created, payload=payload)


def read_reply(src: Coord, dest: Coord, created: int = 0,
               payload: object = None) -> Packet:
    """A 64-byte read-reply packet (MC -> core)."""
    return Packet(src, dest, READ_REPLY_BYTES, TrafficClass.REPLY,
                  created=created, payload=payload)
