"""Exploration results: ranking, frontier bookkeeping, pinned artifacts.

An :class:`ExplorationResult` records every point of one exploration —
constraint-rejected points with their named rules, evaluated candidates
with their full fidelity-ladder history, the exact Pareto frontier over
(harmonic-mean IPC, chip mm²), and the throughput-effectiveness ranking.
``to_json`` round-trips exactly (``from_json`` gives field-for-field
equality) and deliberately excludes host-side timing, so results are
bit-identical across ``--jobs`` counts and cache states (golden-tested).

Artifacts (``write_artifacts``) have pinned schemas:

* ``exploration.json`` — the full result, ``{"schema": 2, ...}``;
* ``candidates.csv`` / ``frontier.csv`` — fixed column order
  (:data:`CSV_COLUMNS`) for spreadsheet/pandas consumption;
* ``tech_nodes.csv`` — one row per (candidate, technology node) with the
  node-scaled power breakdown and per-node IPC/W rank
  (:data:`NODE_CSV_COLUMNS`); written only when power was computed;
* ``host.json`` — wall-clock, per-phase profile and cache tallies (the
  only artifact that varies run to run).

Schema history: 1 carried the two-objective (IPC, mm²) payload; 2 adds
the power objective (per-candidate watts, IPC/W, the per-node sweep and
the 3-D frontier bookkeeping).  ``from_json`` still reads schema-1
artifacts — the power fields default to "not computed".
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Bumped whenever the result payload layout changes, so downstream
#: consumers (and the BENCH trajectory) never misread an old artifact.
#: 1 = two objectives (IPC, mm²); 2 adds the power objective.
SCHEMA_VERSION = 2

#: Schemas :meth:`ExplorationResult.from_json` can read.  Schema-1
#: artifacts predate the power model; their power fields load as "not
#: computed" defaults.
READABLE_SCHEMAS = (1, 2)

#: Pinned column order of ``candidates.csv`` and ``frontier.csv``.
CSV_COLUMNS = (
    "rank", "name", "fidelity", "hm_ipc", "throughput_effectiveness",
    "chip_area_mm2", "noc_area_mm2", "on_frontier", "dominated_by",
    "noc_power_w", "ipc_per_watt", "on_frontier3d", "dominated_by_3d",
    "placement", "routing", "half_routers", "channel_width",
    "vcs_per_class", "vc_buffer_depth", "double_network", "slice_mode",
    "mc_inject_ports", "mc_eject_ports", "mesh",
)

#: Pinned column order of ``tech_nodes.csv`` (one row per candidate ×
#: technology node; ``rank_at_node`` orders by IPC/W within the node).
NODE_CSV_COLUMNS = (
    "name", "tech_nm", "frequency_ghz", "dynamic_w", "leakage_w",
    "total_w", "energy_per_flit_pj", "ipc_per_watt", "rank_at_node",
)


@dataclass(frozen=True)
class StageOutcome:
    """One candidate's result at one ladder stage."""

    stage: str                   # "screen" | "round<N>" | "confirm"
    metric: float                # the stage's ranking metric (see engine)
    hm_ipc: Optional[float]      # None for the open-loop screen
    rank: int                    # 1-based rank within the stage cohort
    kept: bool                   # promoted to the next stage?

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "StageOutcome":
        return cls(**data)


@dataclass
class CandidateResult:
    """One evaluated design point with its full ladder history."""

    name: str
    design: dict                 # NetworkDesign as a plain dict
    mesh: List[int]              # [cols, rows]
    num_mcs: int
    noc_area_mm2: float
    chip_area_mm2: float
    stages: List[StageOutcome]
    fidelity: str                # highest stage reached
    hm_ipc: Optional[float]      # at the highest closed-loop stage
    throughput_effectiveness: Optional[float]   # hm_ipc / chip_area_mm2
    on_frontier: bool = False
    dominated_by: Optional[str] = None
    #: NoC power at the base node (W) and hm_ipc / watts — None until a
    #: closed-loop stage supplies activity counters (schema >= 2).
    noc_power_w: Optional[float] = None
    ipc_per_watt: Optional[float] = None
    #: ``PowerReport.to_json()`` dicts, one per swept technology node in
    #: the exploration's ``tech_nodes`` order.
    power_by_node: Optional[List[dict]] = None
    #: (IPC, mm², W) frontier bookkeeping, same contract as the 2-D pair.
    on_frontier3d: bool = False
    dominated_by_3d: Optional[str] = None

    def to_json(self) -> dict:
        data = asdict(self)
        data["stages"] = [s.to_json() for s in self.stages]
        return data

    @classmethod
    def from_json(cls, data: dict) -> "CandidateResult":
        data = dict(data)
        data["stages"] = [StageOutcome.from_json(s)
                          for s in data["stages"]]
        return cls(**data)


@dataclass
class ExplorationResult:
    """Everything one exploration produced (see module docstring)."""

    preset: str
    seed: int
    seed_policy: str
    mix: List[str]
    round_mix: List[str]
    candidates: List[CandidateResult]
    #: ``{"name": ..., "violations": [{"rule": ..., "reason": ...}]}`` per
    #: constraint-rejected point, in enumeration order.
    rejected: List[dict]
    #: Candidate names, best first: higher fidelity outranks lower, then
    #: the stage metric, then name (deterministic ties).
    ranking: List[str]
    #: Pareto-frontier member names (IPC desc, area asc, name).
    frontier: List[str]
    #: Technology nodes each candidate's power was priced at; the first
    #: entry is the base node used for the W objective.
    tech_nodes: List[int] = field(default_factory=lambda: [65])
    #: (IPC, mm², W) frontier member names at the base node.  A superset
    #: of the 2-D frontier's names: adding an objective never removes a
    #: non-dominated point.
    frontier3d: List[str] = field(default_factory=list)
    #: Host-side stats (wall seconds, per-phase profile, cache tallies).
    #: Deliberately NOT serialized by :meth:`to_json` — results must be
    #: bit-identical across hosts, jobs counts and cache states.
    host: Optional[dict] = field(default=None, compare=False)

    def __getitem__(self, name: str) -> CandidateResult:
        for candidate in self.candidates:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no candidate {name!r} in this exploration")

    def to_json(self) -> dict:
        """JSON-compatible dict; exact float round trip; no host stats."""
        return {
            "schema": SCHEMA_VERSION,
            "preset": self.preset,
            "seed": self.seed,
            "seed_policy": self.seed_policy,
            "mix": list(self.mix),
            "round_mix": list(self.round_mix),
            "candidates": [c.to_json() for c in self.candidates],
            "rejected": self.rejected,
            "ranking": list(self.ranking),
            "frontier": list(self.frontier),
            "tech_nodes": list(self.tech_nodes),
            "frontier3d": list(self.frontier3d),
        }

    @classmethod
    def from_json(cls, data: dict) -> "ExplorationResult":
        """Inverse of :meth:`to_json` with field-for-field equality.

        Also reads schema-1 (pre-power) artifacts: their power fields
        load as the "not computed" defaults."""
        if data.get("schema") not in READABLE_SCHEMAS:
            raise ValueError(f"exploration artifact schema "
                             f"{data.get('schema')!r} not in "
                             f"{READABLE_SCHEMAS}")
        return cls(
            preset=data["preset"], seed=data["seed"],
            seed_policy=data["seed_policy"], mix=list(data["mix"]),
            round_mix=list(data["round_mix"]),
            candidates=[CandidateResult.from_json(c)
                        for c in data["candidates"]],
            rejected=list(data["rejected"]),
            ranking=list(data["ranking"]),
            frontier=list(data["frontier"]),
            tech_nodes=list(data.get("tech_nodes", [65])),
            frontier3d=list(data.get("frontier3d", [])),
        )

    # -- artifacts -----------------------------------------------------------

    def _csv_row(self, candidate: CandidateResult) -> Dict[str, object]:
        design = candidate.design
        rank = (self.ranking.index(candidate.name) + 1
                if candidate.name in self.ranking else "")
        return {
            "rank": rank,
            "name": candidate.name,
            "fidelity": candidate.fidelity,
            "hm_ipc": ("" if candidate.hm_ipc is None
                       else repr(candidate.hm_ipc)),
            "throughput_effectiveness":
                ("" if candidate.throughput_effectiveness is None
                 else repr(candidate.throughput_effectiveness)),
            "chip_area_mm2": repr(candidate.chip_area_mm2),
            "noc_area_mm2": repr(candidate.noc_area_mm2),
            "on_frontier": int(candidate.on_frontier),
            "dominated_by": candidate.dominated_by or "",
            "noc_power_w": ("" if candidate.noc_power_w is None
                            else repr(candidate.noc_power_w)),
            "ipc_per_watt": ("" if candidate.ipc_per_watt is None
                             else repr(candidate.ipc_per_watt)),
            "on_frontier3d": int(candidate.on_frontier3d),
            "dominated_by_3d": candidate.dominated_by_3d or "",
            "placement": design["placement"],
            "routing": design["routing"],
            "half_routers": int(design["half_routers"]),
            "channel_width": design["channel_width"],
            "vcs_per_class": design["vcs_per_class"],
            "vc_buffer_depth": design["vc_buffer_depth"],
            "double_network": int(design["double_network"]),
            "slice_mode": design["slice_mode"],
            "mc_inject_ports": design["mc_inject_ports"],
            "mc_eject_ports": design["mc_eject_ports"],
            "mesh": f"{candidate.mesh[0]}x{candidate.mesh[1]}",
        }

    def _write_csv(self, path: Path,
                   candidates: List[CandidateResult]) -> None:
        ordered = sorted(
            candidates,
            key=lambda c: (self.ranking.index(c.name)
                           if c.name in self.ranking else len(self.ranking),
                           c.name))
        with open(path, "w", encoding="utf-8", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=CSV_COLUMNS)
            writer.writeheader()
            for candidate in ordered:
                writer.writerow(self._csv_row(candidate))

    def _node_rows(self) -> List[Dict[str, object]]:
        """``tech_nodes.csv`` rows: every candidate × swept node, nodes
        in sweep order, candidates ranked by IPC/W within each node (the
        per-node ordering the technology sweep is meant to exhibit)."""
        priced = [c for c in self.candidates if c.power_by_node]
        rows: List[Dict[str, object]] = []
        for index, node in enumerate(self.tech_nodes):
            reports = [(c, c.power_by_node[index]) for c in priced
                       if index < len(c.power_by_node)]
            reports.sort(key=lambda pair: (
                -(pair[1].get("ipc_per_watt") or 0.0), pair[0].name))
            for rank, (candidate, report) in enumerate(reports, start=1):
                ipw = report.get("ipc_per_watt")
                rows.append({
                    "name": candidate.name,
                    "tech_nm": node,
                    "frequency_ghz": repr(report["frequency_ghz"]),
                    "dynamic_w": repr(report["dynamic_w"]),
                    "leakage_w": repr(report["leakage_w"]),
                    "total_w": repr(report["total_w"]),
                    "energy_per_flit_pj":
                        repr(report["energy_per_flit_pj"]),
                    "ipc_per_watt": "" if ipw is None else repr(ipw),
                    "rank_at_node": rank,
                })
        return rows

    def write_artifacts(self, out_dir: Union[str, Path]
                        ) -> Dict[str, Path]:
        """Write ``exploration.json``/``candidates.csv``/``frontier.csv``
        (plus ``tech_nodes.csv`` when power was computed and ``host.json``
        when host stats exist) under ``out_dir``; returns
        ``{artifact name: path}``."""
        root = Path(out_dir)
        root.mkdir(parents=True, exist_ok=True)
        written: Dict[str, Path] = {}

        path = root / "exploration.json"
        path.write_text(json.dumps(self.to_json(), indent=1),
                        encoding="utf-8")
        written["exploration.json"] = path

        path = root / "candidates.csv"
        self._write_csv(path, self.candidates)
        written["candidates.csv"] = path

        path = root / "frontier.csv"
        self._write_csv(path, [c for c in self.candidates
                               if c.on_frontier])
        written["frontier.csv"] = path

        node_rows = self._node_rows()
        if node_rows:
            path = root / "tech_nodes.csv"
            with open(path, "w", encoding="utf-8", newline="") as fh:
                writer = csv.DictWriter(fh, fieldnames=NODE_CSV_COLUMNS)
                writer.writeheader()
                for row in node_rows:
                    writer.writerow(row)
            written["tech_nodes.csv"] = path

        if self.host is not None:
            path = root / "host.json"
            path.write_text(json.dumps({"schema": SCHEMA_VERSION,
                                        **self.host}, indent=1),
                            encoding="utf-8")
            written["host.json"] = path
        return written
