"""The bandwidth limit study of Section III-A (Figure 6).

Closed-loop runs with a zero-latency network whose aggregate accepted
bandwidth is capped at a fraction of peak off-chip DRAM bandwidth.  Two
curves result: harmonic-mean application throughput (normalised to the
infinite-bandwidth network) and throughput per estimated chip area, whose
optimum around 0.7-0.8 of DRAM bandwidth justifies the 16-byte-channel
"balanced mesh".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..area.chip import compute_area_mm2, design_noc_area
from ..core.builder import BASELINE
from ..system.accelerator import bandwidth_capped_chip, perfect_chip
from ..workloads.profiles import PROFILES, BenchmarkProfile
from .config import ChipConfig, paper_config
from .metrics import harmonic_mean

#: The bisection-bandwidth fraction at which the balanced mesh's 16-byte
#: channels sit (Section III-A footnote 3: x = 0.816 at N = 12 flits/iclk).
BALANCED_FRACTION = 0.816
_BALANCED_CHANNEL_BYTES = 16.0


@dataclass(frozen=True)
class LimitPoint:
    fraction: float                 # of peak DRAM bandwidth
    hm_ipc: float
    normalized_throughput: float    # vs the infinite-bandwidth network
    chip_area: float                # compute + scaled-mesh NoC estimate
    normalized_per_area: float      # throughput/area, normalised likewise


def equivalent_channel_bytes(fraction: float) -> float:
    """Mesh channel width whose bisection provides ``fraction`` of DRAM
    bandwidth (linear through the calibrated 16 B at 0.816)."""
    return _BALANCED_CHANNEL_BYTES * fraction / BALANCED_FRACTION


def mesh_area_for_fraction(fraction: float) -> float:
    """Estimated chip area of a mesh sized to ``fraction`` (NoC area grows
    quadratically with channel bandwidth, Section III-A)."""
    width = equivalent_channel_bytes(fraction)
    design = replace(BASELINE, name=f"mesh-{width:.1f}B",
                     channel_width=width)
    return design_noc_area(design).total_chip


def cap_flits_per_cycle(fraction: float,
                        config: Optional[ChipConfig] = None,
                        flit_bytes: float = 16.0) -> float:
    """Aggregate flit budget equal to ``fraction`` of peak DRAM bandwidth."""
    config = config if config is not None else paper_config()
    return fraction * config.peak_dram_bytes_per_icnt_cycle() / flit_bytes


def run_limit_study(fractions: Sequence[float],
                    profiles: Optional[Sequence[BenchmarkProfile]] = None,
                    config: Optional[ChipConfig] = None,
                    warmup: int = 400, measure: int = 800,
                    seed: int = 11) -> List[LimitPoint]:
    """Sweep the bandwidth cap; returns one point per fraction."""
    profiles = list(profiles) if profiles is not None else list(PROFILES)
    config = config if config is not None else paper_config()

    perfect_ipc: Dict[str, float] = {}
    for profile in profiles:
        chip = perfect_chip(profile, config=config, seed=seed)
        perfect_ipc[profile.abbr] = chip.run(warmup, measure).ipc
    perfect_hm = harmonic_mean(list(perfect_ipc.values()))
    perfect_per_area = perfect_hm / compute_area_mm2()

    points = []
    for fraction in fractions:
        cap = cap_flits_per_cycle(fraction, config)
        ipcs = []
        for profile in profiles:
            chip = bandwidth_capped_chip(profile, cap, config=config,
                                         seed=seed)
            ipcs.append(chip.run(warmup, measure).ipc)
        hm = harmonic_mean(ipcs)
        area = mesh_area_for_fraction(fraction)
        points.append(LimitPoint(
            fraction=fraction,
            hm_ipc=hm,
            normalized_throughput=hm / perfect_hm,
            chip_area=area,
            normalized_per_area=(hm / area) / perfect_per_area,
        ))
    return points
