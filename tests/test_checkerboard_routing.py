"""Tests for the checkerboard routing algorithm (the paper's Section IV-B).

These verify the properties the paper claims: minimal hop count, no
dimension change at a half-router, correct case classification, and the
deadlock-freedom precondition (the only group transition is YX -> XY at the
two-phase intermediate).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.checkerboard_routing import (CheckerboardRouting, RouteCase,
                                             UnroutableError, classify,
                                             intermediate_candidates,
                                             is_half_router, trace_route)
from repro.core.placement import checkerboard_placement
from repro.noc.packet import RouteGroup, read_request
from repro.noc.routing import minimal_hops
from repro.noc.topology import Coord, Mesh

MESH = Mesh(6, 6)
coords = st.builds(Coord, st.integers(0, 5), st.integers(0, 5))


def turn_nodes(path):
    """Interior nodes where the route changes dimension."""
    result = []
    for a, b, c in zip(path, path[1:], path[2:]):
        dim_in = "x" if a.x != b.x else "y"
        dim_out = "x" if b.x != c.x else "y"
        if dim_in != dim_out:
            result.append(b)
    return result


class TestClassify:
    def test_local(self):
        assert classify(Coord(1, 1), Coord(1, 1)) is RouteCase.LOCAL

    def test_straight_row_and_column(self):
        assert classify(Coord(0, 2), Coord(5, 2)) is RouteCase.STRAIGHT
        assert classify(Coord(3, 0), Coord(3, 5)) is RouteCase.STRAIGHT

    def test_case1_full_to_half_odd_columns(self):
        # Full (0,0) to half (1,2): one column away, not same row -> the XY
        # turn (1,0) is a half-router, the YX turn (0,2) is full.
        assert classify(Coord(0, 0), Coord(1, 2)) is RouteCase.YX

    def test_case2_half_to_half_even_columns(self):
        # Half (1,0) to half (3,2): two columns away, not same row; both
        # turn nodes (3,0) and (1,2) are half-routers.
        assert classify(Coord(1, 0), Coord(3, 2)) is RouteCase.TWO_PHASE

    def test_unroutable_full_pair(self):
        # Full (0,0) to full (1,1): both turns are half-routers.
        assert classify(Coord(0, 0), Coord(1, 1)) is RouteCase.UNROUTABLE

    def test_xy_when_turn_is_full(self):
        # (0,0) -> (2,1): XY turn (2,0) is a full-router.
        assert classify(Coord(0, 0), Coord(2, 1)) is RouteCase.XY

    @given(coords, coords)
    def test_two_phase_only_between_half_routers(self, src, dest):
        if classify(src, dest) is RouteCase.TWO_PHASE:
            assert is_half_router(src) and is_half_router(dest)
            assert (dest.x - src.x) % 2 == 0

    @given(coords, coords)
    def test_unroutable_only_between_full_routers(self, src, dest):
        if classify(src, dest) is RouteCase.UNROUTABLE:
            assert not is_half_router(src) and not is_half_router(dest)


class TestIntermediateCandidates:
    @given(coords, coords)
    def test_candidates_valid(self, src, dest):
        if classify(src, dest) is not RouteCase.TWO_PHASE:
            return
        cands = intermediate_candidates(MESH, src, dest)
        assert cands, "two-phase pair must have an intermediate"
        for c in cands:
            # Full-router, inside the minimal quadrant, even columns from
            # the source, not in the source's row (Section IV-B).
            assert not is_half_router(c)
            assert min(src.x, dest.x) <= c.x <= max(src.x, dest.x)
            assert min(src.y, dest.y) <= c.y <= max(src.y, dest.y)
            assert (c.x - src.x) % 2 == 0
            assert c.y != src.y


class TestRouting:
    def setup_method(self):
        self.routing = CheckerboardRouting(MESH)
        self.rng = random.Random(7)

    def routable_pairs(self):
        for src in MESH.coords():
            for dest in MESH.coords():
                if classify(src, dest) is not RouteCase.UNROUTABLE:
                    yield src, dest

    def test_all_routable_pairs_minimal(self):
        """CR is minimal for every routable pair on the 6x6 mesh."""
        for src, dest in self.routable_pairs():
            trace = trace_route(MESH, self.routing, src, dest, self.rng)
            assert trace.path[-1] == dest
            assert trace.hops == minimal_hops(src, dest), (src, dest)

    def test_no_turn_at_half_router_ever(self):
        """The defining constraint: no dimension change at a half-router."""
        for src, dest in self.routable_pairs():
            trace = trace_route(MESH, self.routing, src, dest, self.rng)
            for node in turn_nodes(trace.path):
                assert not is_half_router(node), (src, dest, trace.path)

    def test_unroutable_raises(self):
        packet = read_request(Coord(0, 0), Coord(1, 1))
        with pytest.raises(UnroutableError):
            self.routing.plan(packet, self.rng)

    def test_group_transition_only_yx_to_xy(self):
        """Deadlock freedom: groups may only go YX -> XY along a route."""
        order = {RouteGroup.YX: 0, RouteGroup.XY: 1}
        for src, dest in self.routable_pairs():
            trace = trace_route(MESH, self.routing, src, dest, self.rng)
            ranks = [order[g] for g in trace.groups]
            assert ranks == sorted(ranks), (src, dest, trace.groups)

    def test_two_phase_passes_through_intermediate(self):
        src, dest = Coord(1, 0), Coord(3, 2)
        packet = read_request(src, dest)
        self.routing.plan(packet, self.rng)
        assert packet.phase == 0
        intermediate = packet.intermediate
        trace = trace_route(MESH, self.routing, src, dest,
                            random.Random(7))
        assert intermediate is not None

    def test_random_intermediate_selection_varies(self):
        src, dest = Coord(1, 0), Coord(5, 4)
        seen = set()
        for seed in range(40):
            packet = read_request(src, dest)
            self.routing.plan(packet, random.Random(seed))
            seen.add(packet.intermediate)
        assert len(seen) > 1, "intermediate should be randomised"

    def test_mc_traffic_always_routable(self):
        """Compute <-> MC pairs are routable in both directions when MCs
        sit at half-routers (the architecture's guarantee)."""
        mcs = checkerboard_placement(MESH)
        cores = [c for c in MESH.coords() if c not in set(mcs)]
        for core in cores:
            for mc in mcs:
                assert classify(core, mc) is not RouteCase.UNROUTABLE
                assert classify(mc, core) is not RouteCase.UNROUTABLE

    def test_plan_sets_group_for_straight(self):
        packet = read_request(Coord(0, 0), Coord(5, 0))
        self.routing.plan(packet, self.rng)
        assert packet.group is RouteGroup.XY
        assert packet.intermediate is None


class TestVcUsageBalance:
    def test_both_groups_used_across_pairs(self):
        """Like the paper's RD observation (60.1 % of packets on the YX VC),
        both routing VCs should see use across MC traffic."""
        routing = CheckerboardRouting(MESH)
        rng = random.Random(3)
        mcs = set(checkerboard_placement(MESH))
        groups = {RouteGroup.XY: 0, RouteGroup.YX: 0}
        for mc in mcs:
            for core in MESH.coords():
                if core in mcs:
                    continue
                packet = read_request(mc, core)
                routing.plan(packet, rng)
                groups[packet.group] += 1
        assert groups[RouteGroup.XY] > 0
        assert groups[RouteGroup.YX] > 0
