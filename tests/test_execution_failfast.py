"""Regression tests for the execution-layer fail-fast/caching sweep.

Contracts pinned here:

* a worker failure propagates as :class:`TaskError` naming the failing
  task, but every completed sibling's payload is cached first — a
  poisoned batch never discards finished work, and a retry only re-runs
  what actually failed;
* orphaned ``*.tmp.<pid>`` files from killed writers are swept (aged on
  ``put``, unconditionally on ``clear``) and are never served;
* the on-disk index + LRU size budget evict least-recently-used entries
  and survive concurrent writers;
* a truncated telemetry artifact directory (no ``summary.json``
  completion sentinel) forces re-execution instead of serving a cache
  hit against half-written artifacts.
"""

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.builder import BASELINE
from repro.experiments import closed_task, open_loop_task
from repro.noc.traffic import UniformManyToFew
from repro.parallel import (EXECUTION_COUNTER, INDEX_NAME, ResultCache,
                            SimTask, TaskError, run_tasks)
from repro.telemetry import TelemetrySpec
from repro.workloads.profiles import profile

FAST = dict(base_seed=7, warmup=20, measure=40)


def good_tasks(n=3):
    return [open_loop_task(BASELINE, UniformManyToFew, "uniform",
                           0.01 + 0.01 * i, **FAST) for i in range(n)]


def poison_task():
    """A task whose worker raises (unknown kind) on any executor path."""
    return SimTask(kind="boom", label="poison", seed=1, warmup=1, measure=1)


def executed_by(fn):
    before = EXECUTION_COUNTER.executed
    result = fn()
    return EXECUTION_COUNTER.executed - before, result


class TestFailFastRetainsResults:
    def test_serial_poisoned_batch_caches_good_results(self, tmp_path):
        store = ResultCache(tmp_path)
        good = good_tasks()
        with pytest.raises(TaskError) as err:
            run_tasks(good + [poison_task()], jobs=1, cache=store)
        assert err.value.label == "poison"
        assert "poison" in str(err.value)
        assert err.value.index == 3
        assert isinstance(err.value.__cause__, ValueError)
        for task in good:
            assert store.get(task.cache_key()) is not None
        assert store.get(poison_task().cache_key()) is None

    def test_parallel_poisoned_batch_caches_good_results(self, tmp_path):
        store = ResultCache(tmp_path)
        good = good_tasks()
        # Poison first: it fails immediately while the good tasks are
        # still running, so retention exercises the drain-and-harvest
        # path, not just results that landed before the failure.
        with pytest.raises(TaskError) as err:
            run_tasks([poison_task()] + good, jobs=4, cache=store)
        assert err.value.label == "poison"
        assert err.value.index == 0
        for task in good:
            assert store.get(task.cache_key()) is not None

    def test_retry_after_failure_only_runs_the_failed_task(self, tmp_path):
        store = ResultCache(tmp_path)
        good = good_tasks()
        with pytest.raises(TaskError):
            run_tasks(good + [poison_task()], jobs=1, cache=store)
        executed, payloads = executed_by(
            lambda: run_tasks(good, jobs=1, cache=store))
        assert executed == 0, "good results were lost by the failed batch"
        assert [p["label"] for p in payloads] == [t.label for t in good]

    def test_error_label_without_cache(self):
        with pytest.raises(TaskError, match="poison"):
            run_tasks([poison_task()], jobs=1)


class TestOrphanTmpFiles:
    def plant(self, root, name, age_seconds):
        root.mkdir(parents=True, exist_ok=True)
        tmp = root / name
        tmp.write_text('{"result": "half-written"}')
        old = time.time() - age_seconds
        os.utime(tmp, (old, old))
        return tmp

    def test_stale_tmp_removed_on_put_and_never_served(self, tmp_path):
        store = ResultCache(tmp_path)
        stale = self.plant(tmp_path, "deadbeef.tmp.99999", 7200)
        assert store.get("deadbeef") is None, "orphan tmp must not serve"
        store.put("abc", {"result": 1})
        assert not stale.exists(), "stale orphan survived put()"
        assert store.get("abc") == {"result": 1}

    def test_fresh_tmp_survives_put_but_not_clear(self, tmp_path):
        store = ResultCache(tmp_path)
        fresh = self.plant(tmp_path, "cafef00d.tmp.99999", 0)
        store.put("abc", {"result": 1})
        assert fresh.exists(), "a live writer's tmp file was swept"
        store.clear()
        assert not fresh.exists()
        assert len(store) == 0

    def test_clear_removes_index(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("abc", {"result": 1})
        assert (tmp_path / INDEX_NAME).is_file()
        assert store.clear() == 1
        assert not (tmp_path / INDEX_NAME).exists()


class TestIndexAndEviction:
    def entry(self, i):
        return f"{i:064x}", {"result": "x" * 200, "i": i}

    def test_index_tracks_entries_and_bytes(self, tmp_path):
        store = ResultCache(tmp_path)
        for i in range(3):
            store.put(*self.entry(i))
        stats = store.stats()
        assert stats["entries"] == 3
        assert stats["max_bytes"] is None
        on_disk = sum(store.path_for(f"{i:064x}").stat().st_size
                      for i in range(3))
        assert stats["bytes"] == on_disk

    def test_corrupt_index_rebuilds_from_directory(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("abc", {"result": 1})
        (tmp_path / INDEX_NAME).write_text("{corrupt")
        assert store.stats()["entries"] == 1
        assert json.loads((tmp_path / INDEX_NAME).read_text())["entries"]

    def test_lru_eviction_respects_budget_and_recency(self, tmp_path):
        key0, payload = self.entry(0)
        probe = ResultCache(tmp_path)
        probe.put(key0, payload)
        size = probe.path_for(key0).stat().st_size
        probe.clear()

        store = ResultCache(tmp_path, max_bytes=3 * size + size // 2)
        keys = []
        for i in range(3):
            key, payload = self.entry(i)
            store.put(key, payload)
            keys.append(key)
        # Pin recency explicitly: key[1] is oldest, then key[0], key[2].
        now = time.time()
        for key, age in zip(keys, (20.0, 40.0, 10.0)):
            os.utime(store.path_for(key), (now - age, now - age))
        key3, payload = self.entry(3)
        store.put(key3, payload)
        assert store.get(keys[1]) is None, "LRU entry survived eviction"
        for key in (keys[0], keys[2], key3):
            assert store.get(key) is not None
        assert store.stats()["entries"] == 3

    def test_get_refreshes_recency(self, tmp_path):
        store = ResultCache(tmp_path)
        store.put("abc", {"result": 1})
        old = time.time() - 1000
        os.utime(store.path_for("abc"), (old, old))
        store.get("abc")
        assert store.path_for("abc").stat().st_mtime > old + 500

    def test_concurrent_writers_share_one_directory(self, tmp_path):
        with ProcessPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(_hammer_cache, str(tmp_path), worker)
                       for worker in range(4)]
            counters = [future.result() for future in futures]
        store = ResultCache(tmp_path)
        # 4 workers x 10 distinct keys plus 5 shared keys.
        assert len(store) == 45
        assert store.stats()["entries"] == 45
        for worker in range(4):
            for i in range(10):
                assert store.get(f"w{worker}-{i}") == \
                    {"result": [worker, i]}
        for i in range(5):
            assert store.get(f"shared-{i}") is not None
        # Lifetime counters are per-process: each hammer saw exactly its
        # own 20 puts and 10 lookups, no matter how the four interleaved.
        # Every lookup followed that worker's own put of the same key, so
        # under contention it is still a hit (entries are never deleted
        # here; the advisory index lock only guards metadata).
        for worker_counters in counters:
            assert worker_counters["puts"] == 20
            assert worker_counters["hits"] == 10
            assert worker_counters["misses"] == 0
            assert worker_counters["evictions"] == 0


def _hammer_cache(root, worker):
    """Worker for the concurrent-writer test (module-level: picklable).
    Returns the worker's own lifetime counters for per-process
    consistency assertions."""
    store = ResultCache(root)
    for i in range(10):
        store.put(f"w{worker}-{i}", {"result": [worker, i]})
        store.put(f"shared-{i % 5}", {"result": worker})
        store.get(f"shared-{i % 5}")
    return dict(store.counters)


class TestArtifactCompletionSentinel:
    def _task(self, tmp_path):
        spec = TelemetrySpec(trace=True, out_dir=str(tmp_path / "art"))
        return closed_task(BASELINE, profile("AES"), telemetry=spec, **FAST)

    def test_truncated_artifact_dir_forces_reexecution(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        task = self._task(tmp_path)
        cold, _ = executed_by(lambda: run_tasks([task], cache=cache))
        assert cold == 1
        art = task.telemetry_dir()
        assert (art / "summary.json").is_file()

        warm, _ = executed_by(lambda: run_tasks([task], cache=cache))
        assert warm == 0, "complete artifacts must serve the hit"

        # A writer killed mid-flight leaves the directory but not the
        # summary.json completion sentinel; the hit must be bypassed.
        (art / "summary.json").unlink()
        assert art.is_dir()
        rerun, _ = executed_by(lambda: run_tasks([task], cache=cache))
        assert rerun == 1, "truncated artifact dir served a cache hit"
        assert (art / "summary.json").is_file()
