"""Tests for the command-line interface."""

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_run_defaults(self):
        args = make_parser().parse_args(["run", "--benchmark", "RD"])
        assert args.design == "TB-DOR"
        assert args.warmup == 500


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "TB-DOR" in out
        assert "Throughput-Effective" in out
        assert "MUM" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "TB-DOR" in out and "576.00" in out

    def test_area_single_design(self, capsys):
        assert main(["area", "--design", "CP-CR-4VC"]) == 0
        assert "566" in capsys.readouterr().out

    def test_run(self, capsys):
        assert main(["run", "--benchmark", "AES", "--warmup", "50",
                     "--measure", "100"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out and "AES" in out

    def test_run_perfect(self, capsys):
        assert main(["run", "--benchmark", "AES", "--design", "perfect",
                     "--warmup", "50", "--measure", "100"]) == 0
        assert "PerfectNetwork" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--benchmark", "AES",
                     "--designs", "TB-DOR,CP-DOR",
                     "--warmup", "50", "--measure", "100"]) == 0
        out = capsys.readouterr().out
        assert "CP-DOR" in out and "speedup" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--design", "TB-DOR", "--rates", "0.01",
                     "--warmup", "100", "--measure", "200"]) == 0
        out = capsys.readouterr().out
        assert "saturated" in out

    def test_sweep_hotspot(self, capsys):
        assert main(["sweep", "--design", "CP-CR-4VC", "--rates", "0.01",
                     "--hotspot", "--warmup", "100",
                     "--measure", "200"]) == 0
        assert "hotspot" in capsys.readouterr().out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["run", "--benchmark", "NOPE", "--warmup", "10",
                  "--measure", "10"])

    def test_unknown_design_raises(self):
        with pytest.raises(KeyError):
            main(["run", "--benchmark", "RD", "--design", "NOPE",
                  "--warmup", "10", "--measure", "10"])
