"""Tests for the MSHR file."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.mshr import MshrFile


class TestAllocation:
    def test_allocate_new_entry(self):
        m = MshrFile(4)
        entry = m.allocate(0x100, "w0")
        assert not entry.issued
        assert entry.waiters == ["w0"]
        assert len(m) == 1

    def test_merge_same_line(self):
        m = MshrFile(4)
        first = m.allocate(0x100, "w0")
        first.issued = True
        second = m.allocate(0x100, "w1")
        assert second is first
        assert second.waiters == ["w0", "w1"]
        assert len(m) == 1
        assert m.merges == 1

    def test_capacity_enforced(self):
        m = MshrFile(2)
        m.allocate(0x000, "a")
        m.allocate(0x040, "b")
        assert m.full
        assert not m.can_accept(0x080)
        with pytest.raises(RuntimeError):
            m.allocate(0x080, "c")

    def test_merge_allowed_when_full(self):
        m = MshrFile(2)
        m.allocate(0x000, "a")
        m.allocate(0x040, "b")
        assert m.can_accept(0x000)     # merging needs no new entry
        m.allocate(0x000, "c")
        assert len(m) == 2

    def test_merge_limit(self):
        m = MshrFile(4, max_merged=2)
        m.allocate(0x100, "a")
        m.allocate(0x100, "b")
        assert not m.can_accept(0x100)
        with pytest.raises(RuntimeError):
            m.allocate(0x100, "c")


class TestCompletion:
    def test_complete_returns_waiters(self):
        m = MshrFile(4)
        m.allocate(0x100, "w0")
        m.allocate(0x100, "w1")
        assert m.complete(0x100) == ["w0", "w1"]
        assert len(m) == 0

    def test_complete_unknown_line(self):
        with pytest.raises(KeyError):
            MshrFile(4).complete(0x123)

    def test_entry_reusable_after_complete(self):
        m = MshrFile(1)
        m.allocate(0x100, "a")
        m.complete(0x100)
        assert m.can_accept(0x200)
        m.allocate(0x200, "b")

    def test_outstanding_lines(self):
        m = MshrFile(4)
        m.allocate(0x100, "a")
        m.allocate(0x200, "b")
        assert sorted(m.outstanding_lines()) == [0x100, 0x200]


class TestInvariants:
    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            MshrFile(0)

    @given(st.lists(st.integers(0, 15), max_size=100))
    def test_never_exceeds_capacity(self, lines):
        m = MshrFile(4, max_merged=64)
        for line_no in lines:
            line = line_no * 64
            if m.can_accept(line):
                m.allocate(line, "w")
            assert len(m) <= 4

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=60))
    def test_waiters_conserved(self, lines):
        m = MshrFile(8, max_merged=100)
        expected = {}
        for i, line_no in enumerate(lines):
            line = line_no * 64
            m.allocate(line, i)
            expected.setdefault(line, []).append(i)
        got = {line: m.complete(line) for line in list(m.outstanding_lines())}
        assert got == expected
