"""Tests for the half-router structural description used in area modeling."""

from repro.core.half_router import crossbar_shape
from repro.noc.router import full_connectivity, half_connectivity
from repro.noc.topology import Direction, ejection_port, injection_port


class TestCrossbarShape:
    def test_half_router_paper_mux_count(self):
        """Figure 13: four 2x1 muxes plus one ejection mux."""
        shape = crossbar_shape(half=True)
        # 4 mesh outputs x (straight-in + injection) + 5-input ejection mux
        assert shape.mux_inputs == 4 * 2 + 5
        assert shape.name == "half"

    def test_full_router_larger(self):
        assert crossbar_shape(False).mux_inputs > \
            crossbar_shape(True).mux_inputs

    def test_extra_ports_grow_the_switch(self):
        base = crossbar_shape(True).mux_inputs
        two_inj = crossbar_shape(True, num_inject_ports=2).mux_inputs
        two_ej = crossbar_shape(True, num_eject_ports=2).mux_inputs
        assert two_inj > base
        assert two_ej > base
        assert "2inj" in crossbar_shape(True, num_inject_ports=2).name

    def test_counts_derive_from_connectivity(self):
        """The shape must agree with the live connectivity function."""
        shape = crossbar_shape(half=True)
        in_ports = [Direction.NORTH, Direction.SOUTH, Direction.EAST,
                    Direction.WEST, injection_port(0)]
        out_ports = [Direction.NORTH, Direction.SOUTH, Direction.EAST,
                     Direction.WEST, ejection_port(0)]
        manual = 0
        for out in out_ports:
            fan_in = sum(half_connectivity(i, out) for i in in_ports)
            if fan_in > 1:
                manual += fan_in
        assert shape.mux_inputs == manual


class TestConnectivityConsistency:
    def test_half_is_strict_subset_of_full(self):
        in_ports = [Direction.NORTH, Direction.SOUTH, Direction.EAST,
                    Direction.WEST, injection_port(0)]
        out_ports = [Direction.NORTH, Direction.SOUTH, Direction.EAST,
                     Direction.WEST, ejection_port(0)]
        half_pairs = {(i, o) for i in in_ports for o in out_ports
                      if half_connectivity(i, o)}
        full_pairs = {(i, o) for i in in_ports for o in out_ports
                      if full_connectivity(i, o)}
        assert half_pairs < full_pairs
