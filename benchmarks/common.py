"""Shared harness for the per-figure/table benchmarks.

Every bench regenerates one table or figure of the paper's evaluation:
it runs the required simulations inside the pytest-benchmark timer, prints
the same rows/series the paper reports, and writes them to
``benchmarks/results/<name>.txt`` so the numbers survive output capture.

Environment knobs:

* ``REPRO_BENCH_SUBSET`` — comma-separated benchmark abbreviations (default:
  all 31 of Table I).
* ``REPRO_BENCH_WARMUP`` / ``REPRO_BENCH_MEASURE`` — simulation window in
  interconnect cycles (defaults 400 / 800; the shapes are stable well before
  that).
* ``REPRO_JOBS`` — worker processes for the design x benchmark sweeps
  (default 1 = serial; results are bit-identical either way).
* ``REPRO_CACHE_DIR`` — set together with ``REPRO_BENCH_CACHE=1`` to reuse
  simulation results across bench invocations.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.builder import NetworkDesign
from repro.experiments import compare_designs
from repro.system.accelerator import (SimulationResult, build_chip,
                                      perfect_chip)
from repro.workloads.profiles import PROFILES, BenchmarkProfile, profile

RESULTS_DIR = Path(__file__).parent / "results"

WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", "400"))
MEASURE = int(os.environ.get("REPRO_BENCH_MEASURE", "800"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "11"))
JOBS = int(os.environ.get("REPRO_JOBS", "1") or "1")
CACHE = True if os.environ.get("REPRO_BENCH_CACHE") == "1" else None


def bench_profiles() -> List[BenchmarkProfile]:
    subset = os.environ.get("REPRO_BENCH_SUBSET")
    if not subset:
        return list(PROFILES)
    return [profile(abbr.strip().upper()) for abbr in subset.split(",")]


def run_design(prof: BenchmarkProfile,
               design: NetworkDesign) -> SimulationResult:
    chip = build_chip(prof, design=design, seed=SEED)
    return chip.run(warmup=WARMUP, measure=MEASURE)


def run_perfect(prof: BenchmarkProfile) -> SimulationResult:
    chip = perfect_chip(prof, seed=SEED)
    return chip.run(warmup=WARMUP, measure=MEASURE)


def sweep(designs: Sequence[NetworkDesign],
          profiles: Optional[Sequence[BenchmarkProfile]] = None,
          ) -> Dict[str, Dict[str, SimulationResult]]:
    """results[design name][benchmark abbr] -> SimulationResult.

    Delegates to :func:`repro.experiments.compare_designs`, so the design x
    benchmark grid fans out over ``REPRO_JOBS`` worker processes (serial by
    default) with per-point derived seeds.
    """
    profiles = profiles if profiles is not None else bench_profiles()
    comparison = compare_designs(designs, profiles=profiles, warmup=WARMUP,
                                 measure=MEASURE, seed=SEED, jobs=JOBS,
                                 cache=CACHE)
    return comparison.results


def report(name: str, lines: Iterable[str]) -> None:
    """Print the figure/table rows and persist them under results/."""
    text = "\n".join(lines)
    print(f"\n=== {name} ===\n{text}")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn: Callable[[], object]):
    """Run ``fn`` exactly once under the pytest-benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def fmt_pct(x: float) -> str:
    return f"{x:+7.1%}"
