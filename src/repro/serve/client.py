"""Thin blocking client for the job server.

:class:`ServeClient` speaks the NDJSON protocol over a plain socket
(TCP or unix), one request-response exchange per call, holding the
connection open for streaming submissions.  It is deliberately
dependency-free and synchronous — the async machinery lives entirely in
the server — so harness scripts, the ``repro submit`` CLI, benchmarks
and tests all share one code path.

Back-pressure surfaces as :class:`QueueSaturated` carrying the server's
``retry_after`` hint; ``submit(..., max_retries=N)`` optionally honours
it by sleeping and resubmitting.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Callable, Dict, List, Optional

from . import protocol


class ServeError(RuntimeError):
    """Base class for client-visible server errors."""


class JobRejected(ServeError):
    """The server refused the submission (validation failure)."""


class QueueSaturated(JobRejected):
    """Back-pressure: the pending queue is full; retry later.

    ``retry_after`` is the server's estimate (seconds) of when a queue
    slot frees up.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class JobFailed(ServeError):
    """The job executed and failed; ``label`` names the failing task
    when the failure carried one (see :class:`repro.parallel.TaskError`)."""

    def __init__(self, message: str, label: Optional[str] = None) -> None:
        super().__init__(message)
        self.label = label


class ServeClient:
    """Blocking NDJSON client; usable as a context manager.

    One instance holds one connection.  ``host``/``port`` for TCP,
    ``socket_path`` for a unix socket.
    """

    def __init__(self, host: str = protocol.DEFAULT_HOST,
                 port: int = protocol.DEFAULT_PORT,
                 socket_path: Optional[str] = None,
                 client_id: str = "cli",
                 timeout: Optional[float] = 300.0) -> None:
        self.client_id = client_id
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        self._file = self._sock.makefile("rb")

    # -- plumbing ------------------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> None:
        self._sock.sendall(protocol.encode(message))

    def _recv(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        return protocol.decode(line)

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """One request, one reply (no streaming)."""
        self._send(message)
        return self._recv()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- commands ------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        reply = self.request({"cmd": "ping"})
        if not reply.get("ok"):
            raise ServeError(f"ping failed: {reply}")
        return reply

    def stats(self) -> Dict[str, Any]:
        reply = self.request({"cmd": "stats"})
        if not reply.get("ok"):
            raise ServeError(f"stats failed: {reply}")
        return reply["server"]

    def metrics(self, format: str = "text") -> Dict[str, Any]:
        """The server's metrics registry: ``format="text"`` for
        Prometheus exposition (under ``"text"``), ``"json"`` for the
        structured snapshot (under ``"metrics"``).  The reply's
        ``"enabled"`` flag is false when the server runs with
        observability disabled."""
        reply = self.request({"cmd": "metrics", "format": format})
        if not reply.get("ok"):
            raise ServeError(reply.get("error", f"metrics failed: {reply}"))
        return reply

    def status(self, job_id: str) -> Dict[str, Any]:
        reply = self.request({"cmd": "status", "job_id": job_id})
        if not reply.get("ok"):
            raise ServeError(reply.get("error", f"status failed: {reply}"))
        return reply["job"]

    def shutdown(self) -> None:
        """Ask the server to finish running jobs and exit."""
        reply = self.request({"cmd": "shutdown"})
        if not reply.get("ok"):
            raise ServeError(f"shutdown failed: {reply}")

    def submit(self, job: Dict[str, Any], *, priority: int = 0,
               progress: Optional[Callable[[Dict[str, Any]], None]] = None,
               max_retries: int = 0,
               events: Optional[List[Dict[str, Any]]] = None
               ) -> Dict[str, Any]:
        """Submit a job, stream its progress, return its result payload.

        Blocks until the job finishes.  ``progress`` receives each
        ``progress`` event dict as it streams in; ``events`` (a list)
        additionally collects every event verbatim.  On back-pressure
        rejection, retries up to ``max_retries`` times, sleeping the
        server's ``retry_after`` hint between attempts, then raises
        :class:`QueueSaturated`.  Raises :class:`JobRejected` on
        validation failure and :class:`JobFailed` when the job errors.
        """
        attempts = 0
        while True:
            self._send({"cmd": "submit", "client": self.client_id,
                        "priority": priority, "stream": True, "job": job})
            reply = self._recv()
            if events is not None:
                events.append(reply)
            if reply.get("event") == "rejected":
                retry_after = float(reply.get("retry_after", 0.1))
                if attempts >= max_retries:
                    raise QueueSaturated(
                        f"queue saturated ({reply.get('pending')}/"
                        f"{reply.get('max_pending')} pending); "
                        f"retry in {retry_after}s", retry_after)
                attempts += 1
                time.sleep(retry_after)
                continue
            if reply.get("event") == "invalid":
                raise JobRejected(reply.get("error", json.dumps(reply)))
            if reply.get("event") != "accepted":
                raise ServeError(f"unexpected reply: {reply}")
            break

        while True:
            event = self._recv()
            if events is not None:
                events.append(event)
            name = event.get("event")
            if name == "progress":
                if progress is not None:
                    progress(event)
            elif name == "done":
                return event["result"]
            elif name == "failed":
                raise JobFailed(event.get("error", "job failed"),
                                label=event.get("label"))
            else:
                raise ServeError(f"unexpected event: {event}")
