"""Tests for the Figure 6 limit study helpers."""

import pytest

from repro.system.config import paper_config
from repro.system.limit_study import (BALANCED_FRACTION,
                                      cap_flits_per_cycle,
                                      equivalent_channel_bytes,
                                      mesh_area_for_fraction,
                                      run_limit_study)
from repro.workloads.profiles import profile


class TestScaling:
    def test_balanced_fraction_gives_16_byte_channels(self):
        assert equivalent_channel_bytes(BALANCED_FRACTION) == \
            pytest.approx(16.0)

    def test_cap_is_linear_in_fraction(self):
        c1 = cap_flits_per_cycle(0.5)
        c2 = cap_flits_per_cycle(1.0)
        assert c2 == pytest.approx(2 * c1)

    def test_cap_magnitude(self):
        """Peak DRAM = 8 MCs x 16 B/mclk at 1107/602 clock ratio
        = ~14.7 16-byte flits per interconnect cycle."""
        cfg = paper_config()
        expected = 8 * 16 * (1107 / 602) / 16
        assert cap_flits_per_cycle(1.0, cfg) == pytest.approx(expected)

    def test_area_grows_superlinearly(self):
        a1, a2 = mesh_area_for_fraction(0.5), mesh_area_for_fraction(1.0)
        compute = 486.5
        assert (a2 - compute) > 2.5 * (a1 - compute)


class TestRunLimitStudy:
    def test_small_sweep_shape(self):
        """Throughput rises with the cap and saturates near 1.0 of DRAM
        bandwidth (the Figure 6 shape), on a fast benchmark subset."""
        subset = [profile(a) for a in ("RD", "CON", "AES")]
        points = run_limit_study([0.2, 0.8], profiles=subset,
                                 warmup=150, measure=300)
        assert len(points) == 2
        low, high = points
        assert low.hm_ipc < high.hm_ipc
        assert high.normalized_throughput > 0.8
        assert low.normalized_throughput < 0.7
        assert low.chip_area < high.chip_area
