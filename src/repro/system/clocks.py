"""Clock domains (Table II).

The chip has three domains: compute cores at 1296 MHz, interconnect and L2
at 602 MHz, DRAM at 1107 MHz.  The simulator steps the interconnect clock
as master; rate accumulators dole out the faster domains' cycles so that
long-run cycle ratios match the frequency ratios exactly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClockConfig:
    core_mhz: float = 1296.0
    icnt_mhz: float = 602.0
    dram_mhz: float = 1107.0

    @property
    def core_per_icnt(self) -> float:
        return self.core_mhz / self.icnt_mhz

    @property
    def dram_per_icnt(self) -> float:
        return self.dram_mhz / self.icnt_mhz


class RateAccumulator:
    """Emits ``floor(n * ratio)`` total ticks after ``n`` advances."""

    def __init__(self, ratio: float) -> None:
        if ratio <= 0:
            raise ValueError("ratio must be positive")
        self.ratio = ratio
        self._acc = 0.0
        self.total_ticks = 0

    def advance(self) -> int:
        """One master-clock step; returns how many domain ticks elapse."""
        self._acc += self.ratio
        ticks = int(self._acc)
        self._acc -= ticks
        self.total_ticks += ticks
        return ticks
