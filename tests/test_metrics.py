"""Tests for aggregate metrics."""

import pytest

from repro.system.metrics import (classify, geometric_mean, harmonic_mean,
                                  hm_speedup, per_benchmark_speedups)


class TestMeans:
    def test_harmonic_mean_basic(self):
        assert harmonic_mean([1, 1, 1]) == pytest.approx(1.0)
        assert harmonic_mean([2, 2]) == pytest.approx(2.0)
        assert harmonic_mean([1, 3]) == pytest.approx(1.5)

    def test_harmonic_below_arithmetic(self):
        vals = [10.0, 50.0, 200.0]
        assert harmonic_mean(vals) < sum(vals) / 3

    def test_harmonic_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([])
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([-1.0])


class TestSpeedups:
    def test_hm_speedup(self):
        base = {"a": 10.0, "b": 20.0}
        new = {"a": 20.0, "b": 40.0}
        assert hm_speedup(new, base) == pytest.approx(1.0)

    def test_mismatched_sets_rejected(self):
        with pytest.raises(ValueError):
            hm_speedup({"a": 1.0}, {"b": 1.0})

    def test_per_benchmark(self):
        out = per_benchmark_speedups({"a": 15.0}, {"a": 10.0})
        assert out["a"] == pytest.approx(0.5)


class TestClassification:
    def test_paper_thresholds(self):
        assert classify(0.5, 2.0) == "HH"
        assert classify(0.1, 2.0) == "LH"
        assert classify(0.1, 0.5) == "LL"
        assert classify(0.5, 0.5) == "HL"

    def test_threshold_boundaries(self):
        assert classify(0.30, 1.0) == "LL"       # strict inequality
        assert classify(0.31, 1.01) == "HH"
