"""Mesh channels: pipelined flit delivery plus upstream credit return."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from .packet import Flit
from .topology import Direction, PortId


class Channel:
    """A unidirectional channel between two routers.

    Flits travel downstream with ``latency`` cycles of delay; credits travel
    upstream (toward the sending router's output port) with ``credit_delay``
    cycles of delay.  Delivery is performed by the network at the start of
    each cycle, before routers are stepped.
    """

    __slots__ = ("latency", "credit_delay", "src_router", "src_port",
                 "dst_router", "dst_port", "_flits", "_credits",
                 "flits_carried", "watch", "tracer", "delivered_credits",
                 "_dst_pos", "_src_out")

    def __init__(self, latency: int = 1, credit_delay: int = 1) -> None:
        if latency < 1:
            raise ValueError("channel latency must be at least 1 cycle")
        self.latency = latency
        self.credit_delay = credit_delay
        self.src_router = None
        self.src_port: Optional[PortId] = None
        self.dst_router = None
        self.dst_port: Optional[PortId] = None
        self._flits: Deque[Tuple[int, Flit, int]] = deque()
        self._credits: Deque[Tuple[int, int]] = deque()
        self.flits_carried = 0
        #: Optional callback fired when the channel becomes busy; the
        #: network uses it to keep an active-channel set so that idle
        #: channels are skipped entirely by the cycle loop.
        self.watch = None
        #: Opt-in per-link flit tracer (``repro.telemetry``); ``None``
        #: keeps the send path at a single attribute test.
        self.tracer = None
        #: Credits handed upstream by the last ``deliver`` call; the
        #: event-driven network reads it to wake the credit-receiving
        #: router (a blocked router sleeps until credits arrive).
        self.delivered_credits = 0
        self._dst_pos = -1
        self._src_out = None

    def connect(self, src_router, src_port: PortId,
                dst_router, dst_port: PortId) -> None:
        self.src_router = src_router
        self.src_port = src_port
        self.dst_router = dst_router
        self.dst_port = dst_port
        # Endpoint fast-path handles, resolved lazily on first delivery
        # (``Router.finalize`` runs after ``connect``, so the position
        # tables do not exist yet here).
        self._dst_pos = -1
        self._src_out = None

    def send_flit(self, flit: Flit, vc: int, cycle: int) -> None:
        flits = self._flits
        # The watch only needs the idle -> busy transition (the active set
        # is a set); skip the callback while already busy.
        if self.watch is not None and not flits and not self._credits:
            self.watch(self)
        flits.append((cycle + self.latency, flit, vc))
        self.flits_carried += 1
        if self.tracer is not None:
            self.tracer.on_link(self, flit, cycle)

    def send_credit(self, vc: int, cycle: int) -> None:
        credits = self._credits
        if self.watch is not None and not credits and not self._flits:
            self.watch(self)
        credits.append((cycle + self.credit_delay, vc))

    @property
    def busy(self) -> bool:
        return bool(self._flits or self._credits)

    # -- read-only introspection (invariant checker / state dumps) ----------

    def flits_in_flight(self, vc: Optional[int] = None) -> int:
        """Flits currently travelling this channel (optionally one VC's)."""
        if vc is None:
            return len(self._flits)
        return sum(1 for _, _, fvc in self._flits if fvc == vc)

    def credits_in_flight(self, vc: Optional[int] = None) -> int:
        """Credits currently travelling upstream (optionally one VC's)."""
        if vc is None:
            return len(self._credits)
        return sum(1 for _, cvc in self._credits if cvc == vc)

    def peek_flits(self):
        """Yield (flit, vc) for every flit in flight, delivery order."""
        for _, flit, vc in self._flits:
            yield flit, vc

    def deliver(self, cycle: int) -> int:
        """Deliver all flits and credits whose delay has elapsed; returns
        the number of flits (not credits) handed to the downstream router,
        so the network knows whether any router just became busy."""
        delivered = 0
        flits = self._flits
        if flits and flits[0][0] <= cycle:
            dst = self.dst_router
            port = self.dst_port
            pos = self._dst_pos
            if pos < 0:
                # Cache the input position once; endpoints without the
                # Router internals (duck-typed test doubles) stay on the
                # generic deliver_flit protocol.
                in_pos = getattr(dst, "_in_pos", None)
                if in_pos is not None:
                    pos = self._dst_pos = in_pos[port]
            popleft = flits.popleft
            if pos < 0:
                while True:
                    _, flit, vc = popleft()
                    dst.deliver_flit(port, vc, flit, cycle)
                    delivered += 1
                    if not flits or flits[0][0] > cycle:
                        break
            else:
                while True:
                    _, flit, vc = popleft()
                    dst.deliver_channel_flit(pos, port, vc, flit, cycle)
                    delivered += 1
                    if not flits or flits[0][0] > cycle:
                        break
        credits = self._credits
        ncred = 0
        if credits and credits[0][0] <= cycle:
            src = self.src_router
            out = self._src_out
            if out is None:
                out_ports = getattr(src, "out_ports", None)
                if out_ports is not None:
                    out = self._src_out = out_ports[self.src_port]
            popleft = credits.popleft
            if out is None:
                while True:
                    _, vc = popleft()
                    src.deliver_credit(self.src_port, vc)
                    ncred += 1
                    if not credits or credits[0][0] > cycle:
                        break
            else:
                while True:
                    _, vc = popleft()
                    src.deliver_credit_port(out, vc)
                    ncred += 1
                    if not credits or credits[0][0] > cycle:
                        break
        self.delivered_credits = ncred
        return delivered
