"""Tests for ROMM two-phase randomised routing."""

import random

from hypothesis import given, strategies as st

from repro.core.builder import CP_ROMM, build
from repro.noc.packet import RouteGroup, read_request
from repro.noc.routing import Romm2Phase, minimal_hops
from repro.noc.topology import Coord, Direction, Mesh

MESH = Mesh(6, 6)
coords = st.builds(Coord, st.integers(0, 5), st.integers(0, 5))


def walk(src, dest, seed=0):
    routing = Romm2Phase(MESH)
    packet = read_request(src, dest)
    routing.plan(packet, random.Random(seed))
    path = [src]
    coord = src
    for _ in range(60):
        port = routing.next_port(coord, packet)
        if port is Direction.EJECT:
            return path, packet
        coord = coord.neighbor(port)
        path.append(coord)
    raise AssertionError("route did not terminate")


class TestRomm:
    @given(coords, coords, st.integers(0, 20))
    def test_minimal_and_correct(self, src, dest, seed):
        path, _ = walk(src, dest, seed)
        assert path[-1] == dest
        assert len(path) - 1 == minimal_hops(src, dest)

    @given(coords, coords, st.integers(0, 20))
    def test_intermediate_inside_minimal_quadrant(self, src, dest, seed):
        routing = Romm2Phase(MESH)
        packet = read_request(src, dest)
        routing.plan(packet, random.Random(seed))
        if packet.intermediate is None:
            return
        i = packet.intermediate
        assert min(src.x, dest.x) <= i.x <= max(src.x, dest.x)
        assert min(src.y, dest.y) <= i.y <= max(src.y, dest.y)

    def test_randomisation_spreads_paths(self):
        paths = {tuple(walk(Coord(0, 0), Coord(4, 4), seed)[0])
                 for seed in range(30)}
        assert len(paths) > 3

    @given(coords, coords, st.integers(0, 10))
    def test_phase_groups_ordered(self, src, dest, seed):
        """Phase one on the YX VC, phase two on the XY VC — never back."""
        routing = Romm2Phase(MESH)
        packet = read_request(src, dest)
        routing.plan(packet, random.Random(seed))
        groups = []
        coord = src
        for _ in range(60):
            port = routing.next_port(coord, packet)
            groups.append(packet.group)
            if port is Direction.EJECT:
                break
            coord = coord.neighbor(port)
        rank = {RouteGroup.YX: 0, RouteGroup.XY: 1}
        ranks = [rank[g] for g in groups]
        assert ranks == sorted(ranks)

    def test_adjacent_nodes_single_phase(self):
        path, packet = walk(Coord(0, 0), Coord(1, 0))
        assert packet.intermediate is None
        assert path == [Coord(0, 0), Coord(1, 0)]


class TestRommDesign:
    def test_build_and_deliver(self):
        system = build(CP_ROMM)
        got = []
        dst = system.mc_nodes[0]
        system.set_ejection_handler(dst, lambda p, c: got.append(p))
        for core in system.compute_nodes[:6]:
            system.try_inject(read_request(core, dst), 0)
        system.run_until_idle()
        assert len(got) == 6

    def test_requires_full_routers(self):
        import dataclasses
        import pytest
        with pytest.raises(ValueError):
            dataclasses.replace(CP_ROMM, half_routers=True).validate()
