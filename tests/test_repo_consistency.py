"""Repository-level consistency checks: the documentation's promises about
files, bench targets and the public API surface hold."""

import py_compile
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestExamples:
    def test_at_least_three_examples(self):
        examples = list((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3
        assert REPO / "examples" / "quickstart.py" in examples

    @pytest.mark.parametrize("path", sorted(
        (REPO / "examples").glob("*.py")), ids=lambda p: p.name)
    def test_examples_compile(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize("path", sorted(
        (REPO / "examples").glob("*.py")), ids=lambda p: p.name)
    def test_examples_have_main_guard(self, path):
        text = path.read_text()
        assert '__name__ == "__main__"' in text
        assert text.startswith("#!/usr/bin/env python3")


class TestBenchTargets:
    def test_design_md_bench_targets_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        for target in re.findall(r"benchmarks/(bench_\w+\.py)", design):
            assert (REPO / "benchmarks" / target).exists(), target

    def test_every_figure_has_a_bench(self):
        benches = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        for fig in ("02", "06", "07", "08", "09", "10", "11", "16", "17",
                    "18", "19", "20", "21"):
            assert any(f"fig{fig}" in b for b in benches), f"figure {fig}"
        assert any("table06" in b for b in benches)

    @pytest.mark.parametrize("path", sorted(
        (REPO / "benchmarks").glob("bench_*.py")), ids=lambda p: p.name)
    def test_benches_compile(self, path):
        py_compile.compile(str(path), doraise=True)


class TestPublicApi:
    def test_top_level_subpackages(self):
        import repro
        for name in ("area", "core", "experiments", "gpu", "mem", "noc",
                     "system", "workloads"):
            assert hasattr(repro, name)

    def test_all_exports_resolve(self):
        import repro.area
        import repro.core
        import repro.gpu
        import repro.mem
        import repro.noc
        import repro.system
        import repro.workloads
        for module in (repro.area, repro.core, repro.gpu, repro.mem,
                       repro.noc, repro.system, repro.workloads):
            for name in module.__all__:
                assert getattr(module, name) is not None, \
                    f"{module.__name__}.{name}"

    def test_documented_quickstart_symbols(self):
        """The README quickstart imports must keep working."""
        from repro.core import BASELINE, THROUGHPUT_EFFECTIVE  # noqa: F401
        from repro.system import build_chip  # noqa: F401
        from repro.workloads import profile  # noqa: F401

    def test_docstrings_everywhere(self):
        """Every public module, class and function carries a docstring."""
        import inspect

        import repro
        modules = [repro.area.chip, repro.area.orion, repro.core.builder,
                   repro.core.checkerboard_routing, repro.core.placement,
                   repro.experiments, repro.gpu.coalescer, repro.gpu.core,
                   repro.gpu.warp, repro.mem.cache, repro.mem.controller,
                   repro.mem.dram, repro.mem.mshr, repro.noc.arbiter,
                   repro.noc.channel, repro.noc.ideal, repro.noc.network,
                   repro.noc.openloop, repro.noc.packet, repro.noc.router,
                   repro.noc.routing, repro.noc.stats, repro.noc.topology,
                   repro.noc.traffic, repro.noc.vc,
                   repro.system.accelerator, repro.system.clocks,
                   repro.system.config, repro.system.limit_study,
                   repro.system.metrics, repro.workloads.generator,
                   repro.workloads.profiles]
        for module in modules:
            assert module.__doc__, module.__name__
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if getattr(obj, "__module__", None) != module.__name__:
                        continue
                    assert obj.__doc__, f"{module.__name__}.{name}"
