"""Determinism contract of the event-driven cycle core.

The event-driven steppers (wake-scheduled routers in ``MeshNetwork.step``,
idle-component skipping in ``Accelerator.step``) must produce results that
are bit-identical to the reference exhaustive scans
(``use_reference_stepper`` / ``REPRO_REFERENCE_STEPPER=1``).  These golden
tests pin that contract across the design space — baseline DOR,
checkerboard routing, and the channel-sliced double network — at low and
saturated load, with the invariant checker and the packet tracer both off
and on.  They also pin the precomputed ``VcConfig`` tables against their
dynamic oracle and the ``__slots__`` layout of Packet/Flit.
"""

import dataclasses

import pytest

from repro.core.builder import (build, checked_variant, design_by_name,
                                open_loop_variant)
from repro.noc.openloop import OpenLoopRunner
from repro.noc.packet import (Flit, Packet, RouteGroup, TrafficClass,
                              read_request)
from repro.noc.topology import Coord, Mesh
from repro.noc.traffic import UniformManyToFew
from repro.noc.vc import VcConfig, dedicated_vc_config, shared_vc_config
from repro.system.accelerator import build_chip
from repro.telemetry import TelemetryHub, TelemetrySpec
from repro.workloads.profiles import profile

#: Baseline, checkerboard routing, channel-sliced double network.
DESIGNS = ("TB-DOR", "CP-CR-4VC", "Double-CP-CR")
#: Well below and well past saturation of the 6x6 baseline mesh.
RATES = (0.02, 0.30)

WARMUP, MEASURE = 150, 300


def _open_point(design_name, rate, *, reference=False, checked=False,
                traced=False, seed=11):
    design = open_loop_variant(design_by_name(design_name))
    if checked:
        design = checked_variant(design, check_interval=32,
                                 watchdog_cycles=20_000)
    system = build(design, Mesh(6, 6), num_mcs=8, seed=seed)
    if reference:
        system.use_reference_stepper()
    hub = None
    if traced:
        hub = TelemetryHub(TelemetrySpec(trace=True))
        hub.attach_network(system)
    runner = OpenLoopRunner(system, system.compute_nodes, system.mc_nodes,
                            UniformManyToFew(system.mc_nodes), rate,
                            seed=seed)
    point = runner.run(warmup=WARMUP, measure=MEASURE)
    return point.to_json(), hub


@pytest.mark.parametrize("design_name", DESIGNS)
@pytest.mark.parametrize("rate", RATES)
def test_open_loop_bit_identity(design_name, rate):
    """Event stepper == reference scan, with checker/tracer off and on.

    The checked and traced legs run under the event stepper (the code
    under test); instrumentation must not perturb results either.
    """
    oracle, _ = _open_point(design_name, rate, reference=True)
    plain, _ = _open_point(design_name, rate)
    assert plain == oracle
    checked, _ = _open_point(design_name, rate, checked=True)
    assert checked == oracle
    traced, hub = _open_point(design_name, rate, traced=True)
    assert traced == oracle
    assert hub.tracer.completed, "tracer saw no packets"


@pytest.mark.parametrize("design_name", ("TB-DOR", "Double-CP-CR"))
def test_closed_loop_bit_identity(design_name):
    """Accelerator event step == exhaustive twin on a finite kernel whose
    drained tail exercises the idle fast paths (finished cores, idle MCs
    and DRAM channels, empty networks)."""

    def run(reference):
        chip = build_chip(profile("BIN"), design=design_by_name(design_name),
                          seed=11, instructions_per_warp=8)
        if reference:
            chip.use_reference_stepper()
        else:
            chip.enable_checks(64)
        return chip.run(warmup=100, measure=900).to_json()

    assert run(False) == run(True)


def test_reference_stepper_env_var(monkeypatch):
    """``REPRO_REFERENCE_STEPPER=1`` selects the exhaustive loops at
    construction time, for both the chip and its networks."""
    monkeypatch.setenv("REPRO_REFERENCE_STEPPER", "1")
    chip = build_chip(profile("BIN"), design=design_by_name("TB-DOR"),
                      seed=11, instructions_per_warp=8)
    assert chip._reference
    for net in chip.network.networks:
        assert net._scan_stepper
    monkeypatch.delenv("REPRO_REFERENCE_STEPPER")
    chip = build_chip(profile("BIN"), design=design_by_name("TB-DOR"),
                      seed=11, instructions_per_warp=8)
    assert not chip._reference


# -- VcConfig precomputed tables ------------------------------------------

VC_CONFIGS = (
    shared_vc_config(1),
    shared_vc_config(2),
    shared_vc_config(2, route_split=True),
    shared_vc_config(4, route_split=True),
    dedicated_vc_config(TrafficClass.REQUEST, 2),
    dedicated_vc_config(TrafficClass.REPLY, 4, route_split=True),
)


@pytest.mark.parametrize("config", VC_CONFIGS,
                         ids=lambda c: f"{len(c.class_map)}cls-"
                                       f"{c.vcs_per_class}vc-"
                                       f"{'split' if c.route_split else 'any'}")
def test_vc_config_tables_match_dynamic_oracle(config):
    """The memoized ``allowed_vcs`` tables equal the reference computation
    for every (carried class, route group) combination."""
    for tclass, _ in config.class_map:
        for group in RouteGroup:
            assert config.allowed_vcs(tclass, group) == \
                config._dynamic_allowed_vcs(tclass, group)


def test_vc_config_tables_preserve_errors():
    """Combinations the tables skip still raise lazily, exactly as the
    dynamic path always did."""
    dedicated = dedicated_vc_config(TrafficClass.REQUEST, 2)
    with pytest.raises(ValueError, match="does not carry"):
        dedicated.allowed_vcs(TrafficClass.REPLY, RouteGroup.ANY)
    narrow = VcConfig(vcs_per_class=1,
                      class_map=((TrafficClass.REQUEST, 0),),
                      route_split=True)
    # ANY is legal with one VC per class; the split groups are not.
    assert narrow.allowed_vcs(TrafficClass.REQUEST, RouteGroup.ANY) == (0,)
    with pytest.raises(ValueError, match="at least 2 VCs"):
        narrow.allowed_vcs(TrafficClass.REQUEST, RouteGroup.XY)


# -- Packet/Flit slots -----------------------------------------------------

def test_packet_and_flit_are_slotted():
    """Packets and flits are the highest-volume objects in a run; the
    ``__slots__`` layout (no per-instance ``__dict__``) is part of the
    cycle core's memory/performance contract."""
    packet = read_request(Coord(0, 0), Coord(1, 1))
    flits = packet.make_flits(16)
    assert not hasattr(packet, "__dict__")
    assert not hasattr(flits[0], "__dict__")
    with pytest.raises(AttributeError):
        packet.scratch = 1
    with pytest.raises(AttributeError):
        flits[0].scratch = 1
    # Field access and dataclass tooling still work on the slotted layout.
    assert flits[0].is_head and flits[-1].is_tail
    assert [f.name for f in dataclasses.fields(Flit)] == \
        ["packet", "index", "is_head", "is_tail", "ready"]
    assert "pid" in [f.name for f in dataclasses.fields(Packet)]
