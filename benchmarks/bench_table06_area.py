"""Table VI: area estimates (ORION 2.0, 65 nm) for every design point, and
the headline: the throughput-effective network improves IPC/mm² by 25.4 %.

This bench regenerates the table from our calibrated area model and checks
each row against the paper's published numbers."""

import dataclasses

from common import once, report
from repro.area.chip import (GTX280_AREA_MM2, compute_area_mm2,
                             design_noc_area, throughput_effectiveness_gain)
from repro.area.orion import link_area, router_area
from repro.core.builder import (BASELINE, CP_CR, DOUBLE_BW,
                                DOUBLE_CP_CR, DOUBLE_CP_CR_2P,
                                DOUBLE_CP_CR_DEDICATED)

PAPER_ROWS = {
    "Baseline": (69.00, 15.63, 576.0),
    "2x-BW": (263.0, 52.95, 790.948),
    "CP-CR": (59.20, 13.9, 566.2),
    "Double CP-CR (dedicated)": (29.74, 8.7, 536.74),
    "Double CP-CR 2P (dedicated)": (30.44, 8.93, 537.44),
}


def _experiment():
    rows = [f"compute area = {compute_area_mm2():.1f} mm2 (paper: 486, "
            f"GTX280 die {GTX280_AREA_MM2:.0f})"]
    ded_2p = dataclasses.replace(DOUBLE_CP_CR_DEDICATED, mc_inject_ports=2)
    table = [
        ("Baseline", design_noc_area(BASELINE)),
        ("2x-BW", design_noc_area(DOUBLE_BW)),
        ("CP-CR", design_noc_area(CP_CR)),
        ("Double CP-CR (dedicated)",
         design_noc_area(DOUBLE_CP_CR_DEDICATED)),
        ("Double CP-CR 2P (dedicated)",
         design_noc_area(ded_2p, multiport_both_slices=False)),
        ("Double CP-CR (balanced, ours)", design_noc_area(DOUBLE_CP_CR)),
        ("Thr.Eff (balanced 2P, ours)", design_noc_area(DOUBLE_CP_CR_2P)),
    ]
    rows.append(f"{'design':30s} {'routers':>8s} {'links':>7s} "
                f"{'NoC %':>7s} {'total':>8s}  paper(routers/%/total)")
    for name, area in table:
        paper = PAPER_ROWS.get(name)
        ref = (f"  {paper[0]:.2f}/{paper[1]:.2f}%/{paper[2]:.2f}"
               if paper else "  --")
        rows.append(f"{name:30s} {area.router_sum:8.2f} {area.link_sum:7.2f} "
                    f"{area.overhead_fraction:7.2%} {area.total_chip:8.2f}"
                    f"{ref}")
        if paper:
            assert abs(area.router_sum - paper[0]) / paper[0] < 0.03
            assert abs(area.total_chip - paper[2]) / paper[2] < 0.01

    rows.append("component anchors: "
                f"full router 16B/2VC = {router_area(16, 2).total:.3f} "
                "(paper 1.916); "
                f"half 16B/4VC = {router_area(16, 4, half=True).total:.3f} "
                "(paper 1.18); "
                f"link 16B = {link_area(16):.3f} (paper 0.175)")
    te_area = design_noc_area(DOUBLE_CP_CR_2P).total_chip
    rows.append(
        "headline identity: +17% IPC at paper layout -> "
        f"{throughput_effectiveness_gain(1.17, 576.0, 537.44):+.1%} IPC/mm2 "
        "(paper +25.4%); with our balanced-slicing area -> "
        f"{throughput_effectiveness_gain(1.17, 576.0, te_area):+.1%}")
    return rows


def test_table06_area(benchmark):
    report("table06_area", once(benchmark, _experiment))
