"""Closed-loop system: clocks, configuration, the full chip, metrics."""

from .accelerator import (Accelerator, SimulationResult,
                          bandwidth_capped_chip, build_chip, perfect_chip)
from .clocks import ClockConfig, RateAccumulator
from .config import ChipConfig, paper_config, scaled_config
from .limit_study import (BALANCED_FRACTION, LimitPoint, cap_flits_per_cycle,
                          equivalent_channel_bytes, mesh_area_for_fraction,
                          run_limit_study)
from .metrics import (classify, geometric_mean, harmonic_mean, hm_speedup,
                      per_benchmark_speedups)

__all__ = [
    "Accelerator", "BALANCED_FRACTION", "ChipConfig", "ClockConfig",
    "LimitPoint", "RateAccumulator", "SimulationResult",
    "bandwidth_capped_chip", "build_chip", "cap_flits_per_cycle",
    "classify", "equivalent_channel_bytes", "geometric_mean",
    "harmonic_mean", "hm_speedup", "mesh_area_for_fraction", "paper_config",
    "per_benchmark_speedups", "perfect_chip", "run_limit_study",
    "scaled_config",
]
