"""Figure 19: multi-port MC routers on the double checkerboard network.

Paper: extra injection ports give up to ~20 % (HH benchmarks; the blocked
time at MC injection drops by 38.5 %), extra ejection ports help only a few
benchmarks (via FR-FCFS row locality / DRAM efficiency, e.g. FWT 57 % ->
65 %), and the two effects are roughly additive."""

from common import bench_profiles, fmt_pct, once, report, run_design
from repro.core.builder import (DOUBLE_CP_CR, DOUBLE_CP_CR_2E,
                                DOUBLE_CP_CR_2P, DOUBLE_CP_CR_2P2E)
from repro.system.metrics import harmonic_mean


def _experiment():
    rows = []
    results = {d.name: {} for d in (DOUBLE_CP_CR, DOUBLE_CP_CR_2P,
                                    DOUBLE_CP_CR_2E, DOUBLE_CP_CR_2P2E)}
    stall_base, stall_2p = [], []
    for prof in bench_profiles():
        base = run_design(prof, DOUBLE_CP_CR)
        p2 = run_design(prof, DOUBLE_CP_CR_2P)
        e2 = run_design(prof, DOUBLE_CP_CR_2E)
        pe = run_design(prof, DOUBLE_CP_CR_2P2E)
        results[DOUBLE_CP_CR.name][prof.abbr] = base.ipc
        results[DOUBLE_CP_CR_2P.name][prof.abbr] = p2.ipc
        results[DOUBLE_CP_CR_2E.name][prof.abbr] = e2.ipc
        results[DOUBLE_CP_CR_2P2E.name][prof.abbr] = pe.ipc
        stall_base.append(base.mc_stall_fraction)
        stall_2p.append(p2.mc_stall_fraction)
        rows.append(f"{prof.abbr:4s} 2P={fmt_pct(p2.ipc/base.ipc-1)} "
                    f"2E={fmt_pct(e2.ipc/base.ipc-1)} "
                    f"2P2E={fmt_pct(pe.ipc/base.ipc-1)} "
                    f"dram_eff {base.dram_efficiency:.2f}->"
                    f"{e2.dram_efficiency:.2f}")
    hm_base = harmonic_mean(list(results[DOUBLE_CP_CR.name].values()))
    for design in (DOUBLE_CP_CR_2P, DOUBLE_CP_CR_2E, DOUBLE_CP_CR_2P2E):
        hm = harmonic_mean(list(results[design.name].values())) / hm_base - 1
        rows.append(f"HM speedup {design.name}: {fmt_pct(hm)}")
    mb, m2 = sum(stall_base) / len(stall_base), sum(stall_2p) / len(stall_2p)
    if mb > 0:
        rows.append(f"mean MC blocked time: {mb:.1%} -> {m2:.1%} "
                    f"({(mb-m2)/mb:.1%} reduction; paper: 38.5%)")
    return rows


def test_fig19_multiport(benchmark):
    report("fig19_multiport", once(benchmark, _experiment))
