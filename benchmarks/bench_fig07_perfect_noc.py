"""Figure 7: speedup of a perfect interconnection network over the baseline
mesh, with the LL/LH/HH classification of Section III-B.

Paper: HM speedup 36 % over all benchmarks, 87 % over the HH group; every
benchmark falls into LL, LH or HH (no HL)."""

from common import MEASURE, SEED, WARMUP, bench_profiles, fmt_pct, once, \
    report
from repro.core.builder import BASELINE
from repro.experiments import classify_benchmarks


def _experiment():
    study = classify_benchmarks(BASELINE, profiles=bench_profiles(),
                                warmup=WARMUP, measure=MEASURE, seed=SEED)
    rows = []
    for b in study.benchmarks:
        rows.append(
            f"{b.abbr:4s} speedup={fmt_pct(b.perfect_speedup)} "
            f"traffic={b.traffic_bytes_per_cycle_node:5.2f} B/cyc "
            f"class={b.measured_group} (paper: {b.expected_group})")
    rows.append(f"classification agreement with the paper: "
                f"{study.agreement:.0%}")
    rows.append(f"HM speedup (all) = {fmt_pct(study.hm_perfect_speedup())}"
                "   (paper: +36%)")
    if any(b.expected_group == "HH" for b in study.benchmarks):
        rows.append(f"HM speedup (HH)  = "
                    f"{fmt_pct(study.hm_perfect_speedup('HH'))}"
                    "   (paper: +87%)")
    return rows


def test_fig07_perfect_noc(benchmark):
    rows = once(benchmark, _experiment)
    report("fig07_perfect_noc", rows)
