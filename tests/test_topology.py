"""Unit and property tests for the mesh topology primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.topology import (Coord, Direction, Mesh, ejection_port,
                                injection_port, is_terminal_port)


class TestDirection:
    @pytest.mark.parametrize("direction,opposite", [
        (Direction.NORTH, Direction.SOUTH),
        (Direction.SOUTH, Direction.NORTH),
        (Direction.EAST, Direction.WEST),
        (Direction.WEST, Direction.EAST),
    ])
    def test_opposites(self, direction, opposite):
        assert direction.opposite() is opposite

    def test_opposite_is_involution(self):
        for d in (Direction.NORTH, Direction.SOUTH, Direction.EAST,
                  Direction.WEST):
            assert d.opposite().opposite() is d

    def test_terminal_directions_have_no_opposite(self):
        with pytest.raises(KeyError):
            Direction.EJECT.opposite()


class TestPorts:
    def test_injection_port_identity(self):
        assert injection_port(0) == ("inj", 0)
        assert injection_port(1) == ("inj", 1)

    def test_ejection_port_identity(self):
        assert ejection_port() == ("ej", 0)

    def test_terminal_port_predicate(self):
        assert is_terminal_port(injection_port())
        assert is_terminal_port(ejection_port(1))
        assert not is_terminal_port(Direction.NORTH)


class TestCoord:
    def test_neighbor_directions(self):
        c = Coord(2, 3)
        assert c.neighbor(Direction.NORTH) == Coord(2, 2)
        assert c.neighbor(Direction.SOUTH) == Coord(2, 4)
        assert c.neighbor(Direction.EAST) == Coord(3, 3)
        assert c.neighbor(Direction.WEST) == Coord(1, 3)

    def test_neighbor_rejects_terminal(self):
        with pytest.raises(ValueError):
            Coord(0, 0).neighbor(Direction.EJECT)

    def test_manhattan(self):
        assert Coord(0, 0).manhattan(Coord(3, 4)) == 7
        assert Coord(5, 5).manhattan(Coord(5, 5)) == 0

    def test_manhattan_symmetry(self):
        assert Coord(1, 2).manhattan(Coord(4, 0)) == \
            Coord(4, 0).manhattan(Coord(1, 2))

    def test_parity(self):
        assert Coord(0, 0).parity() == 0
        assert Coord(1, 0).parity() == 1
        assert Coord(1, 1).parity() == 0
        assert Coord(2, 3).parity() == 1

    def test_parity_flips_on_every_hop(self):
        c = Coord(3, 3)
        for d in (Direction.NORTH, Direction.SOUTH, Direction.EAST,
                  Direction.WEST):
            assert c.neighbor(d).parity() != c.parity()

    def test_ordering_is_stable(self):
        assert sorted([Coord(1, 0), Coord(0, 1)]) == \
            [Coord(0, 1), Coord(1, 0)]

    @given(st.integers(-50, 50), st.integers(-50, 50),
           st.integers(-50, 50), st.integers(-50, 50))
    def test_manhattan_triangle_inequality(self, ax, ay, bx, by):
        a, b, origin = Coord(ax, ay), Coord(bx, by), Coord(0, 0)
        assert a.manhattan(b) <= a.manhattan(origin) + origin.manhattan(b)


class TestMesh:
    def test_dimensions(self):
        mesh = Mesh(6, 6)
        assert mesh.num_nodes == 36
        assert mesh.bisection_links() == 12

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Mesh(0, 4)

    def test_contains(self):
        mesh = Mesh(3, 2)
        assert mesh.contains(Coord(2, 1))
        assert not mesh.contains(Coord(3, 0))
        assert not mesh.contains(Coord(0, -1))

    def test_coords_enumeration(self):
        mesh = Mesh(2, 2)
        assert list(mesh.coords()) == [Coord(0, 0), Coord(1, 0),
                                       Coord(0, 1), Coord(1, 1)]

    def test_index_coord_roundtrip(self):
        mesh = Mesh(6, 6)
        for i in range(mesh.num_nodes):
            assert mesh.index(mesh.coord(i)) == i

    @given(st.integers(1, 12), st.integers(1, 12))
    def test_index_is_bijection(self, cols, rows):
        mesh = Mesh(cols, rows)
        seen = {mesh.index(c) for c in mesh.coords()}
        assert seen == set(range(mesh.num_nodes))

    def test_index_rejects_outside(self):
        with pytest.raises(ValueError):
            Mesh(2, 2).index(Coord(2, 0))
        with pytest.raises(ValueError):
            Mesh(2, 2).coord(4)

    def test_corner_has_two_neighbors(self):
        mesh = Mesh(6, 6)
        assert len(mesh.neighbors(Coord(0, 0))) == 2

    def test_edge_has_three_neighbors(self):
        assert len(Mesh(6, 6).neighbors(Coord(3, 0))) == 3

    def test_interior_has_four_neighbors(self):
        assert len(Mesh(6, 6).neighbors(Coord(3, 3))) == 4

    def test_neighbors_are_reciprocal(self):
        mesh = Mesh(4, 5)
        for c in mesh.coords():
            for d, n in mesh.neighbors(c):
                back = dict((dd, nn) for dd, nn in mesh.neighbors(n))
                assert back[d.opposite()] == c

    def test_direction_towards(self):
        mesh = Mesh(6, 6)
        assert mesh.direction_towards(Coord(0, 0), Coord(3, 0), "x") \
            is Direction.EAST
        assert mesh.direction_towards(Coord(3, 0), Coord(0, 0), "x") \
            is Direction.WEST
        assert mesh.direction_towards(Coord(0, 0), Coord(0, 3), "y") \
            is Direction.SOUTH
        assert mesh.direction_towards(Coord(0, 3), Coord(0, 0), "y") \
            is Direction.NORTH

    def test_direction_towards_rejects_no_offset(self):
        with pytest.raises(ValueError):
            Mesh(6, 6).direction_towards(Coord(1, 1), Coord(1, 2), "x")

    def test_direction_towards_rejects_bad_axis(self):
        with pytest.raises(ValueError):
            Mesh(6, 6).direction_towards(Coord(0, 0), Coord(1, 1), "z")
