"""Tests for the ideal-network models (perfect and bandwidth-capped)."""

import pytest

from repro.noc.ideal import BandwidthLimitedNetwork, PerfectNetwork
from repro.noc.packet import read_reply, read_request
from repro.noc.topology import Coord

SRC, DST = Coord(0, 0), Coord(5, 5)


class TestPerfectNetwork:
    def test_zero_latency_delivery(self):
        net = PerfectNetwork()
        got = []
        net.set_ejection_handler(DST, lambda p, c: got.append((p, c)))
        net.try_inject(read_request(SRC, DST, created=0), 0)
        net.step()
        assert len(got) == 1

    def test_unlimited_bandwidth(self):
        net = PerfectNetwork()
        got = []
        net.set_ejection_handler(DST, lambda p, c: got.append(p))
        for _ in range(1000):
            net.try_inject(read_reply(SRC, DST), 0)
        net.step()
        assert len(got) == 1000

    def test_stats_recorded(self):
        net = PerfectNetwork()
        net.set_ejection_handler(DST, lambda p, c: None)
        net.try_inject(read_reply(SRC, DST), 0)
        net.step()
        assert net.stats.flits_injected == 4
        assert net.stats.flits_ejected == 4

    def test_idle(self):
        net = PerfectNetwork()
        assert net.idle
        net.try_inject(read_request(SRC, DST), 0)
        assert not net.idle
        net.set_ejection_handler(DST, lambda p, c: None)
        net.step()
        assert net.idle


class TestBandwidthLimited:
    def test_rejects_nonpositive_cap(self):
        with pytest.raises(ValueError):
            BandwidthLimitedNetwork(0)

    def test_cap_enforced(self):
        """At 1 flit/cycle, 10 four-flit packets need ~40 cycles."""
        net = BandwidthLimitedNetwork(1.0)
        got = []
        net.set_ejection_handler(DST, lambda p, c: got.append(c))
        for _ in range(10):
            net.try_inject(read_reply(SRC, DST), 0)
        cycles = 0
        while len(got) < 10:
            net.step()
            cycles += 1
            assert cycles < 100
        assert cycles >= 36   # 40 flits minus the banked allowance

    def test_fractional_budget_accumulates(self):
        net = BandwidthLimitedNetwork(0.5)
        got = []
        net.set_ejection_handler(DST, lambda p, c: got.append(c))
        for _ in range(5):
            net.try_inject(read_request(SRC, DST), 0)   # 1 flit each
        for _ in range(20):
            net.step()
        assert len(got) == 5
        # Roughly one delivery every two cycles after the banked start.
        assert got[-1] - got[0] >= 4

    def test_fifo_order(self):
        net = BandwidthLimitedNetwork(1.0)
        got = []
        net.set_ejection_handler(DST, lambda p, c: got.append(p.pid))
        packets = [read_request(SRC, DST) for _ in range(5)]
        for p in packets:
            net.try_inject(p, 0)
        for _ in range(20):
            net.step()
        assert got == [p.pid for p in packets]

    def test_multiple_sources_same_cycle(self):
        """Section III-A: multiple sources can transmit in one cycle."""
        net = BandwidthLimitedNetwork(10.0)
        got = []
        net.set_ejection_handler(DST, lambda p, c: got.append(p))
        for x in range(6):
            net.try_inject(read_request(Coord(x, 0), DST), 0)
        net.step()
        assert len(got) == 6

    def test_high_cap_behaves_like_perfect(self):
        net = BandwidthLimitedNetwork(1e9)
        got = []
        net.set_ejection_handler(DST, lambda p, c: got.append(p))
        for _ in range(50):
            net.try_inject(read_reply(SRC, DST), 0)
        net.step()
        assert len(got) == 50
