"""DSE engine throughput: the machine-readable perf trajectory.

Runs the fixed ``smoke`` exploration twice against a fresh cache — once
cold (every task simulated), once warm (every task a cache hit) — and
writes ``benchmarks/results/BENCH_dse.json``: wall-clock, evaluations per
second and cache-hit rates, plus the per-stage tallies.  Future PRs
compare their number against this baseline, so the workload is pinned
(smoke preset, jobs/windows from the environment knobs in ``common``).

The two explorations must also return bit-identical payloads — the same
guarantee ``tests/test_dse_golden.py`` pins for ``figure2`` — so the
bench doubles as a cheap determinism canary on the smoke space.
"""

from __future__ import annotations

import json
import tempfile
import time

from common import JOBS, RESULTS_DIR, once, report
from repro.dse import explore, preset

BENCH_SCHEMA = 1


def _run(cache_dir: str):
    spec = preset("smoke")
    start = time.perf_counter()
    result = explore(spec, jobs=JOBS, cache=cache_dir)
    return result, time.perf_counter() - start


def _experiment():
    with tempfile.TemporaryDirectory(prefix="dse-bench-cache-") as cache:
        cold, cold_seconds = _run(cache)
        warm, warm_seconds = _run(cache)
    if warm.to_json() != cold.to_json():
        raise AssertionError("smoke exploration is not bit-identical "
                             "between cold and warm cache runs")

    def run_stats(result, seconds):
        host = result.host or {}
        tasks = host.get("tasks", 0)
        return {
            "wall_seconds": round(seconds, 3),
            "tasks": tasks,
            "executed": host.get("executed", 0),
            "cached": host.get("cached", 0),
            "cache_hit_rate": (host.get("cached", 0) / tasks
                               if tasks else 0.0),
            "evaluations_per_second": (round(tasks / seconds, 2)
                                       if seconds > 0 else 0.0),
            "stages": host.get("stages", []),
        }

    payload = {
        "schema": BENCH_SCHEMA,
        "preset": "smoke",
        "jobs": JOBS,
        "candidates": len(cold.candidates),
        "rejected": len(cold.rejected),
        "cold": run_stats(cold, cold_seconds),
        "warm": run_stats(warm, warm_seconds),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_dse.json"
    out.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")

    rows = [
        f"{'run':6s} {'wall s':>8s} {'tasks':>6s} {'executed':>9s} "
        f"{'hit rate':>9s} {'evals/s':>8s}",
    ]
    for label in ("cold", "warm"):
        stats = payload[label]
        rows.append(f"{label:6s} {stats['wall_seconds']:8.2f} "
                    f"{stats['tasks']:6d} {stats['executed']:9d} "
                    f"{stats['cache_hit_rate']:9.1%} "
                    f"{stats['evaluations_per_second']:8.2f}")
    rows.append(f"(smoke: {payload['candidates']} legal candidates, "
                f"{payload['rejected']} rejected up front; "
                f"trajectory in results/BENCH_dse.json)")
    return rows


def test_dse_throughput(benchmark):
    report("dse_throughput", once(benchmark, _experiment))
