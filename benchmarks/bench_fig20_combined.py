"""Figure 20: the combined throughput-effective design (checkerboard
placement + checkerboard routing + double network + 2 MC injection ports)
versus the top-bottom DOR baseline.

Paper: HM speedup 17 % — about half of the 36 % a perfect network achieves
— while *reducing* NoC area."""

from common import MEASURE, SEED, WARMUP, bench_profiles, fmt_pct, once, \
    report, run_perfect
from repro.core.builder import BASELINE, THROUGHPUT_EFFECTIVE
from repro.experiments import compare_designs
from repro.system.metrics import harmonic_mean


def _experiment():
    profiles = bench_profiles()
    comp = compare_designs([BASELINE, THROUGHPUT_EFFECTIVE],
                           profiles=profiles,
                           warmup=WARMUP, measure=MEASURE, seed=SEED)
    perfect = {p.abbr: run_perfect(p).ipc for p in profiles}
    base = comp.ipc(BASELINE.name)
    te_speedups = comp.speedups(THROUGHPUT_EFFECTIVE.name)
    rows = [
        f"{abbr:4s} thr.eff speedup = {fmt_pct(te_speedups[abbr])} "
        f"(perfect: {fmt_pct(perfect[abbr] / base[abbr] - 1)})"
        for abbr in te_speedups
    ]
    hm_te = comp.hm_speedup(THROUGHPUT_EFFECTIVE.name)
    hm_perfect = harmonic_mean(list(perfect.values())) / \
        harmonic_mean(list(base.values())) - 1
    rows.append(f"HM speedup: throughput-effective {fmt_pct(hm_te)} "
                f"(paper +17%), perfect {fmt_pct(hm_perfect)} (paper +36%)")
    if hm_perfect > 0:
        rows.append(f"fraction of perfect-network gain captured: "
                    f"{hm_te / hm_perfect:.0%} (paper: ~half)")
    return rows


def test_fig20_combined(benchmark):
    report("fig20_combined", once(benchmark, _experiment))
